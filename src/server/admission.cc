#include "server/admission.h"

#include <algorithm>

namespace omqc {

using Clock = std::chrono::steady_clock;

AdmissionQueue::AdmissionQueue(AdmissionConfig config, DispatchFn dispatch)
    : config_(config), dispatch_(std::move(dispatch)) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AdmissionQueue::~AdmissionQueue() { Shutdown(); }

bool AdmissionQueue::Submit(const BatchKey& key,
                            std::shared_ptr<void> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.submitted;
  ++stats_.current_depth;
  stats_.queue_depth_peak =
      std::max(stats_.queue_depth_peak, stats_.current_depth);
  Clock::time_point now = Clock::now();
  Group& group = groups_[key];
  if (group.tickets.empty()) {
    group.deadline = now + std::chrono::milliseconds(config_.linger_ms);
  }
  group.tickets.push_back(Ticket{key, std::move(payload), now, 0});
  if (group.tickets.size() >= config_.max_batch) {
    ready_.push_back(std::move(group.tickets));
    groups_.erase(key);
  }
  wake_.notify_one();
  return true;
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller: the dispatcher is already flushing/joined.
    }
    stopping_ = true;
    wake_.notify_one();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void AdmissionQueue::CollectReadyLocked(Clock::time_point now, bool flush) {
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (flush || it->second.deadline <= now) {
      ready_.push_back(std::move(it->second.tickets));
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdmissionQueue::DispatcherLoop() {
  for (;;) {
    std::vector<Ticket> batch;
    uint64_t batch_id = 0;
    bool dropped = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        Clock::time_point now = Clock::now();
        CollectReadyLocked(now, /*flush=*/stopping_);
        if (!ready_.empty()) break;
        if (stopping_) return;  // fully drained
        if (groups_.empty()) {
          wake_.wait(lock);
        } else {
          Clock::time_point next = groups_.begin()->second.deadline;
          for (const auto& [key, group] : groups_) {
            next = std::min(next, group.deadline);
          }
          wake_.wait_until(lock, next);
        }
      }
      batch = std::move(ready_.front());
      ready_.pop_front();
      batch_id = ++next_batch_id_;

      Clock::time_point now = Clock::now();
      for (Ticket& ticket : batch) {
        ticket.wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - ticket.enqueued)
                .count());
        stats_.wait_us_total += ticket.wait_us;
        stats_.wait_us_max = std::max(stats_.wait_us_max, ticket.wait_us);
      }
      ++stats_.batches_dispatched;
      stats_.max_batch_size =
          std::max<uint64_t>(stats_.max_batch_size, batch.size());
      if (batch.size() > 1) stats_.batched_requests += batch.size();
      stats_.current_depth -= std::min<uint64_t>(
          stats_.current_depth, static_cast<uint64_t>(batch.size()));

      // The injector hook is a lock-free counter bump; consulting it under
      // mu_ keeps the drop accounting atomic with the dispatch accounting.
      FaultInjector* injector =
          fault_injector_.load(std::memory_order_acquire);
      if (injector != nullptr && injector->OnBatchDispatch()) {
        dropped = true;
        ++stats_.batches_dropped;
        stats_.dropped_requests += batch.size();
      }
    }
    dispatch_(std::move(batch), batch_id, dropped);
  }
}

AdmissionStats AdmissionQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace omqc
