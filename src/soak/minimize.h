// Failing-case minimization: greedy delta debugging over a Program.
//
// Given a discrepancy predicate (normally "RunDifferential still
// disagrees", with the construction oracles disabled — deletion voids
// them), MinimizeProgram repeatedly deletes one tgd, one fact, or one
// query body atom while the predicate stays true, looping until a fixed
// point. The result is 1-minimal: removing any single remaining element
// makes the discrepancy vanish. RenderRepro turns the survivor into a
// self-contained DLGP file replayable with
// `omqc_cli contain <file> Q1 Q2`.

#ifndef OMQC_SOAK_MINIMIZE_H_
#define OMQC_SOAK_MINIMIZE_H_

#include <cstddef>
#include <functional>
#include <string>

#include "tgd/parser.h"

namespace omqc {

/// Returns true while the failure being chased still reproduces on
/// `candidate`. Must be deterministic; a candidate the engines cannot
/// even run should return false (the deletion is then rejected).
using ReproPredicate = std::function<bool(const Program&)>;

struct MinimizeStats {
  size_t initial_tgds = 0, final_tgds = 0;
  size_t initial_facts = 0, final_facts = 0;
  size_t initial_query_atoms = 0, final_query_atoms = 0;
  size_t probes = 0;  ///< predicate evaluations
  size_t rounds = 0;  ///< sweeps until the fixed point
};

/// Greedily 1-minimizes `start` under `persists`. `start` itself must
/// satisfy the predicate (otherwise it is returned unchanged). Queries are
/// never deleted outright — a repro must keep Q1/Q2 addressable — but
/// their bodies shrink as long as every answer variable stays bound and
/// at least one atom remains.
Program MinimizeProgram(const Program& start, const ReproPredicate& persists,
                        MinimizeStats* stats = nullptr);

/// A replayable repro file: each line of `header` as a '%' comment,
/// then the serialized program.
std::string RenderRepro(const Program& program, const std::string& header);

}  // namespace omqc

#endif  // OMQC_SOAK_MINIMIZE_H_
