#include "soak/scenario.h"

#include <algorithm>

#include "base/rng.h"
#include "base/string_util.h"

namespace omqc {
namespace {

Term V(const std::string& name) { return Term::Variable(name); }
Term C(const std::string& name) { return Term::Constant(name); }

std::vector<Term> LevelVars(int w) {
  std::vector<Term> vars;
  for (int j = 1; j <= w; ++j) vars.push_back(V(StrCat("X", j)));
  return vars;
}

/// One chain under construction (the main chain or a decoy). `prefix`
/// namespaces the chain's predicates, `cprefix` its constants; `anchor`
/// is the constant currently threaded through position 1.
struct Chain {
  std::string prefix;
  std::string cprefix;
  int w;
  Program* program;
  std::string anchor;

  std::string Level(int i) const { return StrCat(prefix, i); }
  std::string Aux(const char* tag, int i) const {
    return StrCat(prefix, tag, i);
  }
};

void AddTgd(Chain& c, std::vector<Atom> body, std::vector<Atom> head) {
  c.program->tgds.tgds.emplace_back(std::move(body), std::move(head));
}

/// Stamps one tile between levels i and i+1. Every tile keeps the anchor
/// at position 1 derivable (the polarity certificate's invariant); kWalk
/// additionally advances `c.anchor` along its fact chain.
void Stamp(Chain& c, int i, TileKind kind, int walk_depth) {
  std::vector<Term> vars = LevelVars(c.w);
  switch (kind) {
    case TileKind::kCopy: {
      AddTgd(c, {Atom::Make(c.Level(i), vars)},
             {Atom::Make(c.Level(i + 1), vars)});
      break;
    }
    case TileKind::kRotate: {
      // Position 1 fixed, the tail rotated by one: lossless, linear.
      std::vector<Term> head{vars[0]};
      for (int j = 2; j < c.w; ++j) head.push_back(vars[j]);
      head.push_back(vars[1]);
      AddTgd(c, {Atom::Make(c.Level(i), vars)},
             {Atom::Make(c.Level(i + 1), head)});
      break;
    }
    case TileKind::kExists: {
      // Drop the last position for a fresh existential — not lossless,
      // so never offered to sticky chains.
      std::vector<Term> head(vars.begin(), vars.end() - 1);
      head.push_back(V("Z"));
      AddTgd(c, {Atom::Make(c.Level(i), vars)},
             {Atom::Make(c.Level(i + 1), head)});
      break;
    }
    case TileKind::kJoin: {
      // Side-join on the anchor position, supported by a fact at the
      // current anchor so derivability survives.
      AddTgd(c,
             {Atom::Make(c.Level(i), vars),
              Atom::Make(c.Aux("Side", i), {vars[0]})},
             {Atom::Make(c.Level(i + 1), vars)});
      c.program->facts.Add(Atom::Make(c.Aux("Side", i), {C(c.anchor)}));
      break;
    }
    case TileKind::kForkMerge: {
      AddTgd(c, {Atom::Make(c.Level(i), vars)},
             {Atom::Make(c.Aux("FkA", i), vars),
              Atom::Make(c.Aux("FkB", i), vars)});
      AddTgd(c,
             {Atom::Make(c.Aux("FkA", i), vars),
              Atom::Make(c.Aux("FkB", i), vars)},
             {Atom::Make(c.Level(i + 1), vars)});
      break;
    }
    case TileKind::kWalk: {
      // Guarded recursion: collapse the level to its anchor, walk a fact
      // chain (Walk_i guards the recursive step), re-expand with fresh
      // existentials. The anchor moves to the end of the chain.
      Term x = V("X1"), y = V("Y");
      AddTgd(c, {Atom::Make(c.Level(i), vars)},
             {Atom::Make(c.Aux("Hop", i), {x})});
      AddTgd(c,
             {Atom::Make(c.Aux("Walk", i), {x, y}),
              Atom::Make(c.Aux("Hop", i), {x})},
             {Atom::Make(c.Aux("Hop", i), {y})});
      std::vector<Term> head{x};
      for (int j = 2; j <= c.w; ++j) head.push_back(V(StrCat("Z", j)));
      AddTgd(c, {Atom::Make(c.Aux("Hop", i), {x})},
             {Atom::Make(c.Level(i + 1), head)});
      std::string from = c.anchor;
      for (int k = 1; k <= walk_depth; ++k) {
        std::string to = StrCat(c.cprefix, "w", i, "_", k);
        c.program->facts.Add(Atom::Make(c.Aux("Walk", i), {C(from), C(to)}));
        from = to;
      }
      c.anchor = from;
      break;
    }
  }
}

/// Tiles legal for `klass` at width `w` — the class invariant lives here:
/// sticky chains only see lossless tiles, linear chains only single-atom
/// bodies, and only guarded chains may recurse.
std::vector<TileKind> AllowedKinds(TgdClass klass, int w) {
  std::vector<TileKind> kinds{TileKind::kCopy};
  const bool wide = w >= 2;
  switch (klass) {
    case TgdClass::kLinear:
      if (wide) {
        kinds.push_back(TileKind::kRotate);
        kinds.push_back(TileKind::kExists);
      }
      break;
    case TgdClass::kSticky:
      if (wide) kinds.push_back(TileKind::kRotate);
      kinds.push_back(TileKind::kJoin);
      kinds.push_back(TileKind::kForkMerge);
      break;
    case TgdClass::kNonRecursive:
      if (wide) {
        kinds.push_back(TileKind::kRotate);
        kinds.push_back(TileKind::kExists);
      }
      kinds.push_back(TileKind::kJoin);
      kinds.push_back(TileKind::kForkMerge);
      break;
    case TgdClass::kGuarded:
      if (wide) {
        kinds.push_back(TileKind::kRotate);
        kinds.push_back(TileKind::kExists);
      }
      kinds.push_back(TileKind::kJoin);
      kinds.push_back(TileKind::kForkMerge);
      kinds.push_back(TileKind::kWalk);
      break;
    default:
      break;  // copy-only chain for anything else
  }
  return kinds;
}

/// The tile forced at level 0 so the chain genuinely exhibits its class
/// (a chain of copies would classify as linear regardless of target).
TileKind SignatureKind(TgdClass klass, int w) {
  switch (klass) {
    case TgdClass::kSticky:
      return TileKind::kJoin;
    case TgdClass::kNonRecursive:
      return TileKind::kForkMerge;
    case TgdClass::kGuarded:
      return TileKind::kWalk;
    default:
      return w >= 2 ? TileKind::kExists : TileKind::kCopy;
  }
}

}  // namespace

const char* TileKindToString(TileKind kind) {
  switch (kind) {
    case TileKind::kCopy:
      return "copy";
    case TileKind::kRotate:
      return "rotate";
    case TileKind::kExists:
      return "exists";
    case TileKind::kJoin:
      return "join";
    case TileKind::kForkMerge:
      return "forkmerge";
    case TileKind::kWalk:
      return "walk";
  }
  return "?";
}

std::string ScenarioSpec::ToString() const {
  return StrCat("seed=", seed, " class=", TgdClassToString(tgd_class),
                " len=", length, " w=", width, " depth=", walk_depth,
                " decoys=", decoy_tiles,
                " polarity=", contained ? "contained" : "not_contained");
}

ScenarioSpec SpecForIndex(uint64_t seed, uint64_t index) {
  SplitMix64 rng = SplitMix64(seed).Fork(index);
  ScenarioSpec spec;
  spec.seed = rng.Next();
  uint64_t r = rng.Below(100);
  spec.tgd_class = r < 30   ? TgdClass::kLinear
                   : r < 55 ? TgdClass::kSticky
                   : r < 80 ? TgdClass::kNonRecursive
                            : TgdClass::kGuarded;
  spec.length = static_cast<int>(rng.Between(2, 6));
  spec.width = static_cast<int>(rng.Between(1, 3));
  spec.walk_depth = static_cast<int>(rng.Between(1, 3));
  spec.decoy_tiles = static_cast<int>(rng.Below(3));
  spec.contained = rng.Chance(55);
  return spec;
}

Scenario MakeScenario(const ScenarioSpec& spec) {
  Scenario out;
  out.spec = spec;
  SplitMix64 rng = SplitMix64(spec.seed).Fork(0x50AC);
  const int w = std::max(1, spec.width);
  const int n = std::max(1, spec.length);
  const int depth = std::max(1, spec.walk_depth);

  Chain main{"T", "", w, &out.program, "a0"};
  std::vector<Term> base{C("a0")};
  for (int j = 1; j < w; ++j) base.push_back(C(StrCat("b", j)));
  out.program.facts.Add(Atom::Make("T0", base));

  std::vector<TileKind> allowed = AllowedKinds(spec.tgd_class, w);
  for (int i = 0; i < n; ++i) {
    TileKind kind = i == 0 ? SignatureKind(spec.tgd_class, w)
                           : allowed[rng.Below(allowed.size())];
    Stamp(main, i, kind, depth);
    out.tiles.push_back(kind);
  }

  // A decoy chain of the same tile family, disconnected from the queries:
  // widens the rewriting/chase search space without touching polarity.
  if (spec.decoy_tiles > 0) {
    Chain decoy{"D", "d", w, &out.program, "da0"};
    std::vector<Term> dbase{C("da0")};
    for (int j = 1; j < w; ++j) dbase.push_back(C(StrCat("db", j)));
    out.program.facts.Add(Atom::Make("D0", dbase));
    for (int i = 0; i < spec.decoy_tiles; ++i) {
      Stamp(decoy, i, allowed[rng.Below(allowed.size())], 1);
    }
  }

  // Q1(V1) :- Tn(V1..Vw), Probe(V1) — the Probe fact on the final anchor
  // makes Q1 nonempty exactly along the certified derivation.
  std::vector<Term> qvars;
  for (int j = 1; j <= w; ++j) qvars.push_back(V(StrCat("V", j)));
  std::vector<Atom> q1_body{Atom::Make(StrCat("T", n), qvars),
                            Atom::Make("Probe", {qvars[0]})};
  ConjunctiveQuery q1({qvars[0]}, q1_body);
  out.program.facts.Add(Atom::Make("Probe", {C(main.anchor)}));

  ConjunctiveQuery q2;
  if (spec.contained) {
    // Each variant admits a homomorphism Q2 → Q1 fixing the answer
    // variable, certifying Q1 ⊆ Q2 under the shared ontology.
    switch (rng.Below(3)) {
      case 0:  // drop the probe join: strictly weaker
        q2 = ConjunctiveQuery({qvars[0]}, {q1_body[0]});
        break;
      case 1:  // unjoin the probe (fresh U maps onto V1)
        q2 = ConjunctiveQuery(
            {qvars[0]}, {q1_body[0], Atom::Make("Probe", {V("U")})});
        break;
      default:  // verbatim: equivalence
        q2 = q1;
        break;
    }
    out.expected = ContainmentOutcome::kContained;
  } else {
    // Marker occurs in no fact and no tgd head, so no rewriting disjunct
    // of Q1 can satisfy it: the first frozen candidate refutes.
    std::vector<Atom> body = q1_body;
    body.push_back(Atom::Make("Marker", {qvars[0]}));
    q2 = ConjunctiveQuery({qvars[0]}, std::move(body));
    out.expected = ContainmentOutcome::kNotContained;
  }
  out.program.queries.push_back(NamedQuery{kLhsQuery, std::move(q1)});
  out.program.queries.push_back(NamedQuery{kRhsQuery, std::move(q2)});

  out.witness_tuple = {C(main.anchor)};
  out.program_text = SerializeProgram(out.program);
  return out;
}

bool SatisfiesClass(const TgdSet& tgds, TgdClass target) {
  switch (target) {
    case TgdClass::kEmpty:
      return tgds.tgds.empty();
    case TgdClass::kLinear:
      return IsLinear(tgds);
    case TgdClass::kSticky:
      return IsSticky(tgds);
    case TgdClass::kNonRecursive:
      return IsNonRecursive(tgds);
    case TgdClass::kGuarded:
      return IsGuarded(tgds);
    case TgdClass::kFull:
      return IsFull(tgds);
    default:
      return true;
  }
}

}  // namespace omqc
