#include "soak/differential.h"

#include <chrono>
#include <utility>

#include "base/fault_injection.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "core/eval.h"
#include "core/frontend.h"

namespace omqc {
namespace {

bool Definite(ContainmentOutcome outcome) {
  return outcome != ContainmentOutcome::kUnknown;
}

ContainmentOutcome Flipped(ContainmentOutcome outcome) {
  switch (outcome) {
    case ContainmentOutcome::kContained:
      return ContainmentOutcome::kNotContained;
    case ContainmentOutcome::kNotContained:
      return ContainmentOutcome::kContained;
    default:
      return outcome;
  }
}

/// Parses the first line of a contain response body
/// ("Q1 ⊆ Q2: CONTAINED") back into an outcome.
Result<ContainmentOutcome> ParseVerdictLine(const std::string& body) {
  size_t eol = body.find('\n');
  std::string line =
      eol == std::string::npos ? body : body.substr(0, eol);
  size_t pos = line.rfind(": ");
  if (pos == std::string::npos) {
    return Status::Internal(StrCat("unparsable verdict line: ", line));
  }
  std::string token = line.substr(pos + 2);
  if (token == "CONTAINED") return ContainmentOutcome::kContained;
  if (token == "NOT_CONTAINED") return ContainmentOutcome::kNotContained;
  if (token == "UNKNOWN") return ContainmentOutcome::kUnknown;
  return Status::Internal(StrCat("unknown verdict token: ", token));
}

}  // namespace

Result<SoakVerdict> RunDifferential(const Program& program,
                                    const DifferentialOptions& options) {
  Schema schema = InferProgramDataSchema(program);
  OMQC_ASSIGN_OR_RETURN(Omq q1,
                        SingleQueryNamed(program, schema, kLhsQuery));
  OMQC_ASSIGN_OR_RETURN(Omq q2,
                        SingleQueryNamed(program, schema, kRhsQuery));

  SoakVerdict verdict;
  verdict.primary_class = PrimaryClass(program.tgds);

  auto contain = [&](size_t threads, ArtifactStore* cache,
                     ResourceGovernor* governor) {
    ContainmentOptions copts;
    copts.rewrite.max_queries = options.rewrite_max_queries;
    // Secondary bounds for walk-tile rewritings whose CQs keep growing:
    // cap the step count outright and prune subsumed disjuncts (sound,
    // keeps many guarded enumerations finite and every config symmetric).
    copts.rewrite.max_steps = 20000;
    copts.rewrite.prune_subsumed = true;
    copts.eval.chase_strategy = options.chase;
    copts.num_threads = threads;
    copts.cache = cache;
    copts.governor = governor;
    return CheckContainment(q1, q2, copts);
  };

  auto eval_witness = [&](ArtifactStore* cache, ConfigOutcome* co) {
    if (options.witness.empty()) return;
    EvalOptions eopts;
    eopts.chase_strategy = options.chase;
    eopts.cache = cache;
    auto answer = EvalTuple(q1, program.facts, options.witness, eopts);
    if (answer.ok()) {
      co->witness_eval = *answer ? 1 : 0;
    } else {
      co->detail = StrCat(co->detail, co->detail.empty() ? "" : "; ",
                          "witness eval: ", answer.status().message());
    }
  };

  auto finish = [&](ConfigOutcome&& co) {
    if (!options.flip_config.empty() && co.config == options.flip_config) {
      co.outcome = Flipped(co.outcome);  // planted bug (test-only)
    }
    verdict.outcomes.push_back(std::move(co));
  };

  // Local configs: one per thread count, over the shared cache.
  bool first_config = true;
  for (size_t threads : options.thread_counts) {
    ConfigOutcome co;
    co.config = StrCat("threads", threads);
    auto result = contain(threads, options.cache, nullptr);
    if (!result.ok()) {
      // The first config vets the program itself; a later config failing
      // where the first succeeded is recorded, not fatal.
      if (first_config) return result.status();
      co.detail = StrCat("error: ", result.status().message());
    } else {
      co.outcome = result->outcome;
      co.detail = result->detail;
    }
    if (first_config) eval_witness(options.cache, &co);
    first_config = false;
    finish(std::move(co));
  }

  if (options.with_cache_off) {
    ConfigOutcome co;
    co.config = "nocache";
    auto result = contain(1, nullptr, nullptr);
    if (!result.ok()) {
      co.detail = StrCat("error: ", result.status().message());
    } else {
      co.outcome = result->outcome;
      co.detail = result->detail;
    }
    eval_witness(nullptr, &co);
    finish(std::move(co));
  }

  if (options.persist_cache != nullptr) {
    // Persistent-cache config: same engine, but the compilation cache is
    // a TieredStore whose entries may have round-tripped through on-disk
    // segments (the soak driver warm-reloads it between batches). A
    // decode bug shows up here as a verdict disagreement.
    ConfigOutcome co;
    co.config = "persist";
    auto result = contain(1, options.persist_cache, nullptr);
    if (!result.ok()) {
      co.detail = StrCat("error: ", result.status().message());
    } else {
      co.outcome = result->outcome;
      co.detail = result->detail;
    }
    eval_witness(options.persist_cache, &co);
    finish(std::move(co));
  }

  if (options.fault_seed != 0) {
    // Governed config: random deadline/memory budgets plus an injected
    // fault plan. Budgets only ever degrade a verdict to kUnknown, so a
    // tripped or starved first attempt is retried ungoverned and the
    // retry's definite verdict joins the differential comparison.
    ConfigOutcome co;
    co.config = "governed";
    SplitMix64 frng(options.fault_seed);
    ResourceGovernor governor;
    governor.set_deadline_after(
        std::chrono::milliseconds(frng.Between(2, 40)));
    governor.set_memory_budget(
        static_cast<size_t>(frng.Between(1u << 18, 4u << 20)));
    FaultPlan plan = RandomFaultPlan(frng);
    FaultInjector injector(plan);
    governor.set_fault_injector(&injector);
    if (options.cache != nullptr) {
      options.cache->set_fault_injector(&injector);
    }
    auto first = contain(2, options.cache, &governor);
    if (options.cache != nullptr) {
      options.cache->set_fault_injector(nullptr);
    }
    if (first.ok() && Definite(first->outcome)) {
      co.outcome = first->outcome;
      co.detail = first->detail;
    } else {
      co.governed_retry = true;
      auto retry = contain(1, options.cache, nullptr);
      if (!retry.ok()) {
        co.detail = StrCat("error: ", retry.status().message());
      } else {
        co.outcome = retry->outcome;
        co.detail = retry->detail;
      }
      eval_witness(options.cache, &co);
    }
    finish(std::move(co));
  }

  if (options.client != nullptr) {
    ConfigOutcome co;
    co.config = "server";
    WireRequest request;
    request.type = RequestType::kContain;
    request.tenant = options.server_tenant;
    // Bounds guarded (non-saturating) rewritings server-side; also the
    // client's total retry budget.
    request.deadline_ms = options.server_deadline_ms;
    request.program = SerializeProgram(program);
    request.query = kLhsQuery;
    request.query2 = kRhsQuery;
    auto response = options.client->Call(std::move(request));
    if (!response.ok()) {
      co.detail = StrCat("server transport: ",
                         response.status().message());
    } else if (response->code != StatusCode::kOk) {
      co.detail = StrCat("server status ",
                         StatusCodeToString(response->code), ": ",
                         response->message);
    } else {
      auto outcome = ParseVerdictLine(response->body);
      if (!outcome.ok()) {
        co.detail = outcome.status().message();
      } else {
        co.outcome = *outcome;
      }
    }
    finish(std::move(co));
  }

  // Cross-checks, cheapest evidence first. The first failure wins the
  // description; `discrepancy` latches.
  auto flag = [&](std::string description) {
    if (verdict.discrepancy) return;
    verdict.discrepancy = true;
    verdict.description = std::move(description);
  };

  if (options.expected_class.has_value() &&
      !SatisfiesClass(program.tgds, *options.expected_class)) {
    flag(StrCat("ontology fails its target class ",
                TgdClassToString(*options.expected_class), " (classified ",
                TgdClassToString(verdict.primary_class), ")"));
  }

  const ConfigOutcome* first_definite = nullptr;
  for (const ConfigOutcome& co : verdict.outcomes) {
    if (!Definite(co.outcome)) continue;
    if (first_definite == nullptr) {
      first_definite = &co;
    } else if (co.outcome != first_definite->outcome) {
      flag(StrCat("config ", first_definite->config, " says ",
                  ContainmentOutcomeToString(first_definite->outcome),
                  " but config ", co.config, " says ",
                  ContainmentOutcomeToString(co.outcome)));
    }
  }
  if (first_definite != nullptr) {
    verdict.agreed = first_definite->outcome;
    if (options.expected.has_value() &&
        first_definite->outcome != *options.expected) {
      flag(StrCat("config ", first_definite->config, " says ",
                  ContainmentOutcomeToString(first_definite->outcome),
                  " but the polarity oracle says ",
                  ContainmentOutcomeToString(*options.expected)));
    }
  }
  for (const ConfigOutcome& co : verdict.outcomes) {
    if (co.witness_eval == 0) {
      flag(StrCat("config ", co.config,
                  " rejected the certified witness tuple"));
    }
  }
  return verdict;
}

Result<SoakVerdict> RunDifferential(const Scenario& scenario,
                                    DifferentialOptions options) {
  options.expected = scenario.expected;
  options.expected_class = scenario.spec.tgd_class;
  options.witness = scenario.witness_tuple;
  return RunDifferential(scenario.program, options);
}

}  // namespace omqc
