#include "soak/minimize.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/string_util.h"

namespace omqc {
namespace {

std::vector<Atom> FactList(const Program& program) {
  std::vector<Atom> facts;
  for (const Atom& atom : program.facts.atoms()) facts.push_back(atom);
  return facts;
}

/// Rebuilds `base` with `facts` as its database (the Instance API has no
/// removal; delta debugging rebuilds from the survivor list).
Program WithFacts(const Program& base, const std::vector<Atom>& facts) {
  Program out;
  out.tgds = base.tgds;
  out.queries = base.queries;
  for (const Atom& atom : facts) out.facts.Add(atom);
  return out;
}

/// May body atom `k` of `query` be deleted? Every answer variable must
/// stay bound by a remaining atom, and at least one atom must remain.
bool DeletableQueryAtom(const ConjunctiveQuery& query, size_t k) {
  if (query.body.size() <= 1) return false;
  for (const Term& var : query.answer_vars) {
    if (!var.IsVariable()) continue;
    bool bound = false;
    for (size_t j = 0; j < query.body.size() && !bound; ++j) {
      if (j == k) continue;
      const auto& args = query.body[j].args;
      bound = std::find(args.begin(), args.end(), var) != args.end();
    }
    if (!bound) return false;
  }
  return true;
}

size_t QueryAtomCount(const Program& program) {
  size_t n = 0;
  for (const NamedQuery& q : program.queries) n += q.query.body.size();
  return n;
}

}  // namespace

Program MinimizeProgram(const Program& start, const ReproPredicate& persists,
                        MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& s = stats != nullptr ? *stats : local;
  s.initial_tgds = start.tgds.tgds.size();
  s.initial_facts = start.facts.size();
  s.initial_query_atoms = QueryAtomCount(start);

  Program current = WithFacts(start, FactList(start));
  ++s.probes;
  if (!persists(current)) {
    // Nothing to chase — hand the caller back its input.
    s.final_tgds = s.initial_tgds;
    s.final_facts = s.initial_facts;
    s.final_query_atoms = s.initial_query_atoms;
    return current;
  }

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    ++s.rounds;

    // Tgds, back to front so the indices of untried rules stay stable.
    for (size_t i = current.tgds.tgds.size(); i-- > 0;) {
      Program candidate = current;
      candidate.tgds.tgds.erase(candidate.tgds.tgds.begin() +
                                static_cast<ptrdiff_t>(i));
      ++s.probes;
      if (persists(candidate)) {
        current = std::move(candidate);
        shrunk = true;
      }
    }

    // Facts.
    std::vector<Atom> facts = FactList(current);
    for (size_t i = facts.size(); i-- > 0;) {
      std::vector<Atom> fewer = facts;
      fewer.erase(fewer.begin() + static_cast<ptrdiff_t>(i));
      Program candidate = WithFacts(current, fewer);
      ++s.probes;
      if (persists(candidate)) {
        current = std::move(candidate);
        facts = std::move(fewer);
        shrunk = true;
      }
    }

    // Query body atoms (disjunct atoms), keeping every query well-formed.
    for (size_t qi = 0; qi < current.queries.size(); ++qi) {
      for (size_t k = current.queries[qi].query.body.size(); k-- > 0;) {
        if (!DeletableQueryAtom(current.queries[qi].query, k)) continue;
        Program candidate = current;
        auto& body = candidate.queries[qi].query.body;
        body.erase(body.begin() + static_cast<ptrdiff_t>(k));
        ++s.probes;
        if (persists(candidate)) {
          current = std::move(candidate);
          shrunk = true;
        }
      }
    }
  }

  s.final_tgds = current.tgds.tgds.size();
  s.final_facts = current.facts.size();
  s.final_query_atoms = QueryAtomCount(current);
  return current;
}

std::string RenderRepro(const Program& program, const std::string& header) {
  std::string out;
  size_t start = 0;
  while (start <= header.size() && !header.empty()) {
    size_t eol = header.find('\n', start);
    std::string line = header.substr(
        start, eol == std::string::npos ? std::string::npos : eol - start);
    out += StrCat("% ", line, "\n");
    if (eol == std::string::npos) break;
    start = eol + 1;
  }
  out += SerializeProgram(program);
  return out;
}

}  // namespace omqc
