// Scenario factory: composable OMQ "tiles" stamped into soak instances
// with known containment polarity.
//
// A scenario is a self-contained Program (ontology + facts + two named
// queries, kLhsQuery/kRhsQuery) built by stitching small gadget tiles into
// a chain of level predicates T0..Tn of fixed arity w — the Wang-tile
// construction from the paper's tiling lower bounds (src/generators/
// tiling), repurposed: each tile's "edge signature" is the (predicate,
// arity) interface it consumes at level i and produces at level i+1, so
// any tile sequence composes. Tiles are drawn per class so the assembled
// ontology provably lands in the requested fragment (linear / sticky /
// non-recursive / guarded).
//
// Polarity certificates, by construction:
//
//   * An *anchor* constant enters at T0 position 1 and every tile
//     preserves position 1 (the walk tile moves the anchor along its own
//     chain of facts), so the final anchor is derivable at Tn — the
//     witness tuple for Q1 and the reason Q1 is non-trivial.
//   * Q1(V1) :- Tn(V1..Vw), Probe(V1)  with a Probe fact on the final
//     anchor. A *contained* scenario picks Q2 as a homomorphic weakening
//     of Q1 (drop the Probe join, unjoin it, or take Q1 verbatim): the
//     identity-on-answer-variables homomorphism Q2 → Q1 certifies
//     Q1 ⊆ Q2 under the shared ontology. A *non-contained* scenario picks
//     Q2 = Q1 ∧ Marker(V1) where Marker appears in no fact and no tgd
//     head: the scenario's own facts are a counterexample database.
//
// Determinism: MakeScenario is a pure function of its spec; the spec's
// seed feeds one SplitMix64 stream (base/rng.h), so (seed, index) alone
// reproduces a scenario bit-for-bit across platforms.

#ifndef OMQC_SOAK_SCENARIO_H_
#define OMQC_SOAK_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/containment.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

namespace omqc {

/// The query names every scenario program carries (and repro files replay:
/// `omqc_cli contain <file> Q1 Q2`).
inline constexpr const char kLhsQuery[] = "Q1";
inline constexpr const char kRhsQuery[] = "Q2";

/// The tile alphabet. Availability depends on the target class and the
/// level width (see scenario.cc's kind table).
enum class TileKind {
  kCopy,       ///< T_i(x̄) → T_{i+1}(x̄)
  kRotate,     ///< permute the non-anchor positions (w ≥ 2)
  kExists,     ///< drop the last position for a fresh existential (w ≥ 2)
  kJoin,       ///< side-join on the anchor: T_i(x̄), Side_i(x1) → T_{i+1}(x̄)
  kForkMerge,  ///< T_i → FkA_i ∧ FkB_i; FkA_i ∧ FkB_i → T_{i+1}
  kWalk,       ///< guarded recursion: collapse to the anchor, walk a fact
               ///< chain of length `walk_depth`, re-expand (guarded only)
};

const char* TileKindToString(TileKind kind);

/// Knobs for one scenario. SpecForIndex derives these from (seed, index);
/// tests construct them directly for targeted shapes.
struct ScenarioSpec {
  uint64_t seed = 1;  ///< per-scenario stream seed (not the master seed)
  TgdClass tgd_class = TgdClass::kLinear;  ///< kLinear / kSticky /
                                           ///< kNonRecursive / kGuarded
  int length = 4;      ///< tiles in the main chain (levels T0..Tlength)
  int width = 2;       ///< level-predicate arity (join width), >= 1
  int walk_depth = 2;  ///< walk-tile chain length (recursion depth)
  int decoy_tiles = 2; ///< tiles of a disconnected decoy chain D0..
  bool contained = true;  ///< polarity: is Q1 ⊆ Q2 by construction?

  std::string ToString() const;
};

/// A generated scenario with its certificates.
struct Scenario {
  ScenarioSpec spec;
  Program program;           ///< tgds + facts + queries Q1, Q2
  std::string program_text;  ///< SerializeProgram(program)
  /// Certificate: this tuple is a certain answer of Q1 over the facts
  /// (the final anchor constant).
  std::vector<Term> witness_tuple;
  /// Polarity oracle: kContained or kNotContained, by construction.
  ContainmentOutcome expected = ContainmentOutcome::kUnknown;
  /// The stamped tile sequence, for logs and repro headers.
  std::vector<TileKind> tiles;
};

/// The spec of the `index`-th scenario of master stream `seed` — class,
/// size and polarity mixing are defined here so a corpus is reproducible
/// from (seed, count) alone.
ScenarioSpec SpecForIndex(uint64_t seed, uint64_t index);

/// Builds the scenario for `spec`. Pure: equal specs yield byte-identical
/// `program_text`.
Scenario MakeScenario(const ScenarioSpec& spec);

/// Does `tgds` satisfy (at least) `target`? Dispatches to the classify
/// predicates; kGeneral/kFull always pass.
bool SatisfiesClass(const TgdSet& tgds, TgdClass target);

}  // namespace omqc

#endif  // OMQC_SOAK_SCENARIO_H_
