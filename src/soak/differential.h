// Differential execution of one scenario across every engine
// configuration that claims identical verdicts.
//
// Configurations: containment at threads 1/2/8 over the shared cache,
// cache-off, governed-with-random-budgets (deadline/memory budgets and a
// seeded FaultPlan; a trip or budget-starved kUnknown is retried
// ungoverned, and the retry must reproduce the definite verdict), a
// persistent-cache config over a TieredStore when one is supplied
// (artifacts decoded from on-disk segments must agree with fresh
// compilations), and — when a client is supplied — a live OmqServer. Eval of the certified
// witness tuple runs on the cached and uncached configs. Every pair of
// definite outcomes must agree, definite outcomes must match the
// scenario's polarity oracle, the witness tuple must evaluate true, and
// the ontology must satisfy its target class. kUnknown (budget-limited,
// e.g. non-saturating guarded rewritings) is never a discrepancy.
//
// The `flip_config` hook is the planted-bug backdoor for tests and the
// smoke script: it flips the named configuration's definite containment
// verdict, which the differential check must catch and the minimizer must
// shrink.

#ifndef OMQC_SOAK_DIFFERENTIAL_H_
#define OMQC_SOAK_DIFFERENTIAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/artifact_store.h"
#include "chase/chase.h"
#include "core/containment.h"
#include "server/client.h"
#include "soak/scenario.h"

namespace omqc {

struct DifferentialOptions {
  /// Uniform rewriting budget for every local config — small enough to
  /// keep guarded (non-saturating) scenarios cheap, identical across
  /// configs so budget-induced kUnknown is symmetric. Kept low on
  /// purpose: walk-tile rewritings grow per-CQ, so admission cost is
  /// superlinear in this budget (400 is already ~a minute on the worst
  /// factory scenarios).
  size_t rewrite_max_queries = 120;
  /// Thread counts to run containment at (each is one config).
  std::vector<size_t> thread_counts = {1, 2, 8};
  /// Also run a cache-off config (cache-on configs use `cache`).
  bool with_cache_off = true;
  /// Shared compilation cache for the cached configs (null = all configs
  /// effectively uncached).
  ArtifactStore* cache = nullptr;
  /// Persistent-cache config when non-null (not owned): containment at 1
  /// thread over a TieredStore, typically warm-reloaded between scenario
  /// batches by the caller. Artifacts decoded from disk segments must
  /// yield the same verdict as freshly compiled ones.
  ArtifactStore* persist_cache = nullptr;
  ChaseStrategy chase = ChaseStrategy::kSemiNaive;
  /// Run the governed config: random deadline/memory budgets plus a
  /// RandomFaultPlan drawn from this seed stream. 0 disables it.
  uint64_t fault_seed = 0;
  /// Live-server config when non-null (not owned): the scenario is
  /// serialized and sent as a contain request under `server_tenant`.
  OmqClient* client = nullptr;
  std::string server_tenant = "soak";
  /// Wall-clock deadline carried by the server request. The wire protocol
  /// has no rewrite budget, so this is what bounds non-saturating guarded
  /// rewritings server-side; a trip is a kUnknown outcome, never a
  /// discrepancy.
  uint64_t server_deadline_ms = 2000;
  /// Oracle checks (disabled during minimization, where mutation voids
  /// the construction certificates).
  std::optional<ContainmentOutcome> expected;
  std::optional<TgdClass> expected_class;
  /// Certified Q1 answer tuple to eval-check (empty = skip eval).
  std::vector<Term> witness;
  /// Test-only planted bug: flip this config's definite verdict.
  std::string flip_config;
};

/// One configuration's observation.
struct ConfigOutcome {
  std::string config;
  ContainmentOutcome outcome = ContainmentOutcome::kUnknown;
  std::string detail;  ///< kUnknown explanation / server error
  /// Eval of the witness tuple: -1 not run or inexact, 0 rejected
  /// (discrepancy), 1 accepted.
  int witness_eval = -1;
  /// Governed config only: the budgeted first attempt tripped and the
  /// outcome above came from the ungoverned retry. Wall-clock dependent —
  /// never part of deterministic output.
  bool governed_retry = false;
};

struct SoakVerdict {
  std::vector<ConfigOutcome> outcomes;
  TgdClass primary_class = TgdClass::kGeneral;
  bool discrepancy = false;
  std::string description;  ///< first discrepancy, human-readable
  /// The scenario's agreed verdict: the common definite outcome, or
  /// kUnknown when no config was definite.
  ContainmentOutcome agreed = ContainmentOutcome::kUnknown;
};

/// Runs every configured engine over `program` (which must carry queries
/// kLhsQuery and kRhsQuery) and cross-checks. Errors are plumbing-level
/// only (missing query, malformed program); engine budget exhaustion is a
/// kUnknown outcome, not an error.
Result<SoakVerdict> RunDifferential(const Program& program,
                                    const DifferentialOptions& options);

/// Convenience: wires the scenario's oracle fields into the options.
Result<SoakVerdict> RunDifferential(const Scenario& scenario,
                                    DifferentialOptions options);

}  // namespace omqc

#endif  // OMQC_SOAK_DIFFERENTIAL_H_
