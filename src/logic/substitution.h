// Substitutions: finite mappings from variables (and occasionally nulls)
// to terms, applied to atoms, atom lists and queries.

#ifndef OMQC_LOGIC_SUBSTITUTION_H_
#define OMQC_LOGIC_SUBSTITUTION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/atom.h"

namespace omqc {

/// A finite map Term -> Term. Identity outside its domain. Terms bound to
/// themselves are treated as unbound.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `from` to `to`. Overwrites any previous binding of `from`.
  void Bind(const Term& from, const Term& to) { map_[from] = to; }

  /// Removes the binding of `from`, if any.
  void Unbind(const Term& from) { map_.erase(from); }

  /// The image of `t`: its binding if bound, else `t` itself.
  Term Apply(const Term& t) const {
    auto it = map_.find(t);
    return it == map_.end() ? t : it->second;
  }

  /// The image of `t` chased through chains of bindings (x->y->z gives z).
  /// Used when composing most-general unifiers.
  Term ApplyTransitively(const Term& t) const;

  /// The binding of `t`, or nullopt if unbound.
  std::optional<Term> Lookup(const Term& t) const {
    auto it = map_.find(t);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool IsBound(const Term& t) const { return map_.count(t) > 0; }

  /// Applies the substitution to every argument of `atom`.
  Atom Apply(const Atom& atom) const;
  /// Applies the substitution to a list of atoms.
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;
  /// Applies the substitution to a list of terms.
  std::vector<Term> Apply(const std::vector<Term>& terms) const;

  /// Applies transitively (chain-following) to every argument.
  Atom ApplyTransitively(const Atom& atom) const;
  std::vector<Atom> ApplyTransitively(const std::vector<Atom>& atoms) const;
  std::vector<Term> ApplyTransitively(const std::vector<Term>& terms) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  const std::unordered_map<Term, Term, TermHash>& bindings() const {
    return map_;
  }

  /// "{X->a, Y->b}" with deterministic ordering.
  std::string ToString() const;

 private:
  std::unordered_map<Term, Term, TermHash> map_;
};

}  // namespace omqc

#endif  // OMQC_LOGIC_SUBSTITUTION_H_
