// Terms: constants, labeled nulls and variables (Sec. 2 of the paper).
//
// Terms are small value types backed by a process-wide interning table, so
// equality and hashing are O(1) integer operations. The interning tables
// and the fresh-null counter are synchronized: the parallel containment
// engine (src/core/containment.cc) interns terms from worker threads.

#ifndef OMQC_LOGIC_TERM_H_
#define OMQC_LOGIC_TERM_H_

#include <cstdint>
#include <functional>
#include <string>

#include "base/hash_util.h"

namespace omqc {

/// The three disjoint term sorts C (constants), N (nulls), V (variables).
enum class TermKind : uint8_t {
  kConstant = 0,
  kNull = 1,
  kVariable = 2,
};

/// An interned term. Copyable, 8 bytes, O(1) compare/hash.
class Term {
 public:
  Term() : kind_(TermKind::kConstant), id_(-1) {}

  /// Interns (or looks up) the constant named `name`.
  static Term Constant(const std::string& name);
  /// Interns (or looks up) the variable named `name`.
  static Term Variable(const std::string& name);
  /// Creates a fresh labeled null, distinct from all existing nulls.
  static Term FreshNull();
  /// Returns the null with the given id (for deterministic test setups and
  /// arena snapshot restore).
  static Term NullWithId(int32_t id);
  /// Bumps the fresh-null counter to at least `bound`, so nulls restored
  /// from a snapshot (whose ids were allocated by another process) can
  /// never collide with nulls this process creates afterwards.
  static void ReserveNullIds(int32_t bound);

  TermKind kind() const { return kind_; }
  int32_t id() const { return id_; }

  bool IsConstant() const { return kind_ == TermKind::kConstant; }
  bool IsNull() const { return kind_ == TermKind::kNull; }
  bool IsVariable() const { return kind_ == TermKind::kVariable; }

  /// True iff this term came from one of the factories above. The default
  /// constructor yields an *invalid* kConstant with id -1 — without this
  /// check it is indistinguishable from a real constant in comparisons
  /// (mirrors Predicate::valid()). Instance::Add asserts validity in debug
  /// builds.
  bool valid() const { return id_ >= 0; }

  /// The name this term was interned under; nulls render as "_:n<id>".
  std::string ToString() const;

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && id_ == other.id_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  /// Arbitrary-but-total order (kind, id); used for canonical sorting.
  bool operator<(const Term& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    return id_ < other.id_;
  }

 private:
  Term(TermKind kind, int32_t id) : kind_(kind), id_(id) {}

  TermKind kind_;
  int32_t id_;
};

struct TermHash {
  size_t operator()(const Term& t) const {
    size_t seed = static_cast<size_t>(t.kind());
    HashCombine(seed, static_cast<size_t>(t.id()));
    return seed;
  }
};

}  // namespace omqc

namespace std {
template <>
struct hash<omqc::Term> {
  size_t operator()(const omqc::Term& t) const {
    return omqc::TermHash{}(t);
  }
};
}  // namespace std

#endif  // OMQC_LOGIC_TERM_H_
