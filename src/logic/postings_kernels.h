// Data-oriented kernels over Instance's id postings (DESIGN.md "Postings
// kernels").
//
// Postings lists are sorted ascending (AtomIds are assigned in insertion
// order and each list is appended in that order), duplicate-free, and
// backed by contiguous arrays — the preconditions every kernel here
// assumes. The kernels are deliberately dumb loops over flat data: the
// layout work happens at Add time (predicate-major term mirror, packed id
// lists), so the scans can be branch-light and SIMD-friendly.
//
// The SIMD intersection path is compiled when the build detects support
// (CMake option OMQC_ENABLE_SIMD; sanitizer presets turn it off so both
// code paths stay exercised) and additionally checks the running CPU, so
// a binary built with the flag still works on older hardware. The scalar
// kernels are always compiled and are the reference the tests compare
// against.

#ifndef OMQC_LOGIC_POSTINGS_KERNELS_H_
#define OMQC_LOGIC_POSTINGS_KERNELS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "logic/instance.h"

namespace omqc {

/// True iff the SIMD intersection kernel is compiled in AND supported by
/// the CPU this process runs on.
bool PostingsSimdEnabled();

/// Appends a ∩ b to `out` (both inputs sorted ascending, duplicate-free;
/// the result is too). Scalar reference kernel: linear two-pointer merge,
/// switching to galloping (doubling search in the longer list) when the
/// lengths are skewed — cost O(min(na,nb) · log(max/min)) on skew,
/// O(na + nb) otherwise.
void IntersectPostingsScalar(const AtomId* a, size_t na, const AtomId* b,
                             size_t nb, std::vector<AtomId>& out);

/// Dispatching intersection: the SIMD kernel when available, else the
/// scalar reference. Identical results by contract (tested).
void IntersectPostings(const AtomId* a, size_t na, const AtomId* b,
                       size_t nb, std::vector<AtomId>& out);

/// k-way sorted intersection: folds `lists` smallest-first so the running
/// result shrinks as fast as possible; stops early when it empties.
/// `lists` is reordered (sorted by ascending size). `out` receives the
/// result; `scratch` is caller-owned swap space so hot loops reuse
/// capacity instead of allocating. Handles k = 0 (out left empty) and
/// k = 1 (copy).
void IntersectPostingsKWay(
    std::vector<const std::vector<AtomId>*>& lists, std::vector<AtomId>& out,
    std::vector<AtomId>& scratch);

/// The contiguous subrange of sorted postings `ids` whose values v satisfy
/// lo <= v < hi, as [first, last) pointers. The semi-naive chase's delta
/// for one predicate is exactly this range with [lo, hi) the delta's
/// arena-id window — no per-turn grouping pass or map required.
std::pair<const AtomId*, const AtomId*> PostingsIdRange(
    const std::vector<AtomId>& ids, AtomId lo, AtomId hi);

}  // namespace omqc

#endif  // OMQC_LOGIC_POSTINGS_KERNELS_H_
