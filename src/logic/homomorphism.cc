#include "logic/homomorphism.h"

#include <algorithm>
#include <set>

namespace omqc {
namespace {

/// Counts how many arguments of `atom` are bound under `sub` (constants and
/// nulls count as bound).
int BoundArgs(const Atom& atom, const Substitution& sub) {
  int bound = 0;
  for (const Term& t : atom.args) {
    if (!t.IsVariable() || sub.IsBound(t)) ++bound;
  }
  return bound;
}

/// The candidate atoms in `target` that may match `atom` under `sub`:
/// uses the most selective available index.
const std::vector<Atom>& Candidates(const Atom& atom, const Substitution& sub,
                                    const Instance& target) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    Term image = t.IsVariable() ? sub.Apply(t) : t;
    if (!image.IsVariable()) {
      return target.AtomsWithArg(atom.predicate, static_cast<int>(i), image);
    }
  }
  return target.AtomsWith(atom.predicate);
}

struct SearchState {
  const Instance& target;
  const std::function<bool(const Substitution&)>& visitor;
  size_t max_steps;
  size_t steps = 0;
  bool stopped = false;  // visitor requested stop or budget exhausted
};

/// Recursive most-constrained-first backtracking search. `remaining` holds
/// indices of body atoms not yet matched.
bool Search(const std::vector<Atom>& atoms, std::vector<size_t>& remaining,
            Substitution& sub, SearchState& state) {
  if (state.max_steps != 0 && ++state.steps > state.max_steps) {
    state.stopped = true;
    return false;
  }
  if (remaining.empty()) {
    if (!state.visitor(sub)) state.stopped = true;
    return true;
  }
  // Pick the remaining atom with the most bound arguments.
  size_t best_pos = 0;
  int best_bound = -1;
  for (size_t pos = 0; pos < remaining.size(); ++pos) {
    int bound = BoundArgs(atoms[remaining[pos]], sub);
    if (bound > best_bound) {
      best_bound = bound;
      best_pos = pos;
    }
  }
  std::swap(remaining[best_pos], remaining.back());
  size_t atom_index = remaining.back();
  remaining.pop_back();
  const Atom& atom = atoms[atom_index];

  bool found = false;
  for (const Atom& candidate : Candidates(atom, sub, state.target)) {
    std::vector<Term> newly_bound;
    bool feasible = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& from = atom.args[i];
      const Term& to = candidate.args[i];
      if (!from.IsVariable()) {
        if (from != to) {
          feasible = false;
          break;
        }
        continue;
      }
      auto existing = sub.Lookup(from);
      if (existing.has_value()) {
        if (*existing != to) {
          feasible = false;
          break;
        }
        continue;
      }
      sub.Bind(from, to);
      newly_bound.push_back(from);
    }
    if (feasible) {
      if (Search(atoms, remaining, sub, state)) found = true;
    }
    for (const Term& v : newly_bound) sub.Unbind(v);
    if (state.stopped) break;
  }

  remaining.push_back(atom_index);
  std::swap(remaining[best_pos], remaining.back());
  return found;
}

}  // namespace

void ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor) {
  Substitution sub = seed;
  std::vector<size_t> remaining(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) remaining[i] = i;
  SearchState state{target, visitor, /*max_steps=*/0};
  Search(atoms, remaining, sub, state);
}

std::optional<Substitution> FindHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed, const HomomorphismOptions& options) {
  std::optional<Substitution> result;
  std::function<bool(const Substitution&)> capture =
      [&result](const Substitution& sub) {
        result = sub;
        return false;  // stop after the first hit
      };
  Substitution sub = seed;
  std::vector<size_t> remaining(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) remaining[i] = i;
  SearchState state{target, capture, options.max_steps};
  Search(atoms, remaining, sub, state);
  return result;
}

std::vector<std::vector<Term>> EvaluateCQ(const ConjunctiveQuery& q,
                                          const Instance& instance) {
  std::set<std::vector<Term>> answers;
  std::function<bool(const Substitution&)> collect =
      [&](const Substitution& sub) {
        std::vector<Term> tuple = sub.Apply(q.answer_vars);
        for (const Term& t : tuple) {
          if (!t.IsConstant()) return true;  // nulls are not answers
        }
        answers.insert(std::move(tuple));
        return true;
      };
  ForEachHomomorphism(q.body, instance, Substitution(), collect);
  return std::vector<std::vector<Term>>(answers.begin(), answers.end());
}

std::vector<std::vector<Term>> EvaluateUCQ(const UnionOfCQs& q,
                                           const Instance& instance) {
  std::set<std::vector<Term>> answers;
  for (const ConjunctiveQuery& disjunct : q.disjuncts) {
    for (std::vector<Term>& tuple : EvaluateCQ(disjunct, instance)) {
      answers.insert(std::move(tuple));
    }
  }
  return std::vector<std::vector<Term>>(answers.begin(), answers.end());
}

bool TupleInAnswer(const ConjunctiveQuery& q, const Instance& instance,
                   const std::vector<Term>& tuple) {
  if (tuple.size() != q.answer_vars.size()) return false;
  Substitution seed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Term& v = q.answer_vars[i];
    if (!v.IsVariable()) {
      if (v != tuple[i]) return false;
      continue;
    }
    auto existing = seed.Lookup(v);
    if (existing.has_value()) {
      if (*existing != tuple[i]) return false;
      continue;
    }
    seed.Bind(v, tuple[i]);
  }
  return FindHomomorphism(q.body, instance, seed).has_value();
}

bool HoldsIn(const ConjunctiveQuery& q, const Instance& instance) {
  return FindHomomorphism(q.body, instance).has_value();
}

bool CQContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (q1.answer_vars.size() != q2.answer_vars.size()) return false;
  FrozenQuery frozen = Freeze(q1);
  return TupleInAnswer(q2, frozen.database, frozen.answer_tuple);
}

bool UCQContainedIn(const UnionOfCQs& q1, const UnionOfCQs& q2) {
  for (const ConjunctiveQuery& disjunct : q1.disjuncts) {
    FrozenQuery frozen = Freeze(disjunct);
    bool covered = false;
    for (const ConjunctiveQuery& target : q2.disjuncts) {
      if (target.answer_vars.size() == disjunct.answer_vars.size() &&
          TupleInAnswer(target, frozen.database, frozen.answer_tuple)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace omqc
