#include "logic/homomorphism.h"

#include <algorithm>
#include <set>

#include "base/governor.h"
#include "logic/postings_kernels.h"

namespace omqc {
namespace {

/// Counts how many arguments of `atom` are bound under `sub` (constants and
/// nulls count as bound).
int BoundArgs(const Atom& atom, const Substitution& sub) {
  int bound = 0;
  for (const Term& t : atom.args) {
    if (!t.IsVariable() || sub.IsBound(t)) ++bound;
  }
  return bound;
}

/// Per-recursion-depth swap space for the k-way candidate intersection.
/// The buffers live in SearchState (one set per depth, reused across the
/// whole search) so the hot loop never allocates once warmed up.
struct IntersectScratch {
  std::vector<const std::vector<AtomId>*> lists;
  std::vector<AtomId> result;
  std::vector<AtomId> tmp;
};

struct SearchState {
  SearchState(const Instance& target_,
              const std::function<bool(const Substitution&)>& visitor_,
              size_t max_steps_, ResourceGovernor* governor_)
      : target(target_), visitor(visitor_), max_steps(max_steps_),
        governor(governor_) {}

  const Instance& target;
  const std::function<bool(const Substitution&)>& visitor;
  size_t max_steps;
  ResourceGovernor* governor = nullptr;
  size_t steps = 0;
  size_t candidates_scanned = 0;
  size_t postings_intersections = 0;
  size_t candidates_pruned_by_intersection = 0;
  bool visitor_stop = false;  // visitor requested stop
  bool exhausted = false;     // max_steps budget or governor trip
  /// Undo trail of freshly bound variables, shared across the recursion:
  /// each frame remembers its watermark and unwinds back to it, so no
  /// per-candidate vector is ever allocated.
  std::vector<Term> trail;
  /// Intersection buffers, indexed by recursion depth (= atoms matched so
  /// far). Grown lazily; inner heap buffers survive outer resizes, so
  /// pointers into `result.data()` stay valid across deeper recursion.
  std::vector<IntersectScratch> scratch;

  IntersectScratch& ScratchAt(size_t depth) {
    if (scratch.size() <= depth) scratch.resize(depth + 1);
    return scratch[depth];
  }
};

/// The candidate set for one atom under the current bindings. Two layouts:
/// an id list into the target's arena (selective indexes, intersections),
/// or the full predicate postings swept through the packed predicate-major
/// mirror (no bound position at all).
struct CandidateSet {
  const AtomId* ids = nullptr;  ///< id-list mode; null in packed mode
  size_t count = 0;
  bool packed = false;  ///< sweep Instance::Postings(predicate) instead
};

/// Builds the candidate set for `atom` under `sub`, intersecting the
/// postings of ALL bound argument positions (multiplicative pruning; the
/// pre-kernel code scanned the single smallest list). A bound position
/// with an empty postings list refutes the atom outright: the empty set is
/// returned immediately and the caller skips even its governor probe.
CandidateSet BuildCandidates(const Atom& atom, const Substitution& sub,
                             SearchState& state, size_t depth) {
  IntersectScratch& scratch = state.ScratchAt(depth);
  scratch.lists.clear();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    Term image = t.IsVariable() ? sub.Apply(t) : t;
    if (image.IsVariable()) continue;
    const std::vector<AtomId>& list =
        state.target.IdsWithArg(atom.predicate, static_cast<int>(i), image);
    if (list.empty()) return CandidateSet{};  // bound position refutes
    scratch.lists.push_back(&list);
  }
  if (scratch.lists.empty()) {
    // No bound position: full-predicate sweep over the packed mirror.
    CandidateSet set;
    set.packed = true;
    set.count = state.target.Postings(atom.predicate).size();
    return set;
  }
  if (scratch.lists.size() == 1) {
    return CandidateSet{scratch.lists[0]->data(), scratch.lists[0]->size(),
                        false};
  }
  const size_t smallest =
      (*std::min_element(scratch.lists.begin(), scratch.lists.end(),
                         [](const std::vector<AtomId>* x,
                            const std::vector<AtomId>* y) {
                           return x->size() < y->size();
                         }))
          ->size();
  IntersectPostingsKWay(scratch.lists, scratch.result, scratch.tmp);
  ++state.postings_intersections;
  state.candidates_pruned_by_intersection += smallest - scratch.result.size();
  return CandidateSet{scratch.result.data(), scratch.result.size(), false};
}

/// Prefetch lookahead inside candidate id loops: far enough to cover the
/// arena load latency, near enough that the line is still resident when
/// the loop reaches it.
constexpr size_t kScanPrefetchDistance = 8;

/// Stride of governor probes inside the backtracking loop: frequent enough
/// to bound overrun (~64 cheap steps), rare enough that the relaxed atomic
/// load stays invisible next to the index lookups (<2% — EXPERIMENTS.md).
constexpr size_t kGovernorStride = 64;

/// Extends `sub` so that `atom` maps onto `candidate` (a span into the
/// target's arena); pushes the freshly bound variables onto `trail`.
/// Returns false (leaving the fresh bindings for the caller to undo) when
/// the match is infeasible.
bool TryMatch(const Atom& atom, AtomView candidate, Substitution& sub,
              std::vector<Term>& trail) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& from = atom.args[i];
    const Term& to = candidate.arg(i);
    if (!from.IsVariable()) {
      if (from != to) return false;
      continue;
    }
    auto existing = sub.Lookup(from);
    if (existing.has_value()) {
      if (*existing != to) return false;
      continue;
    }
    sub.Bind(from, to);
    trail.push_back(from);
  }
  return true;
}

/// Recursive most-constrained-first backtracking search. `remaining` holds
/// indices of body atoms not yet matched.
bool Search(const std::vector<Atom>& atoms, std::vector<size_t>& remaining,
            Substitution& sub, SearchState& state) {
  ++state.steps;  // counted even without a budget, for observability
  if (state.max_steps != 0 && state.steps > state.max_steps) {
    state.exhausted = true;
    return false;
  }
  if (remaining.empty()) {
    if (!state.visitor(sub)) state.visitor_stop = true;
    return true;
  }
  // Pick the remaining atom with the most bound arguments.
  size_t best_pos = 0;
  int best_bound = -1;
  for (size_t pos = 0; pos < remaining.size(); ++pos) {
    int bound = BoundArgs(atoms[remaining[pos]], sub);
    if (bound > best_bound) {
      best_bound = bound;
      best_pos = pos;
    }
  }
  std::swap(remaining[best_pos], remaining.back());
  size_t atom_index = remaining.back();
  remaining.pop_back();
  const Atom& atom = atoms[atom_index];

  bool found = false;
  const size_t depth = atoms.size() - remaining.size();
  CandidateSet cands = BuildCandidates(atom, sub, state, depth);
  if (cands.count != 0) {
    // The governor is probed only for candidate sets with work in them:
    // an empty set (e.g. a bound position with no postings) returns
    // without paying for the probe.
    if (state.governor != nullptr && state.steps % kGovernorStride == 0 &&
        !state.governor->Check().ok()) {
      state.exhausted = true;
      remaining.push_back(atom_index);
      std::swap(remaining[best_pos], remaining.back());
      return false;
    }
    const size_t trail_mark = state.trail.size();
    if (cands.packed) {
      // Unindexed fallback: sweep the predicate through its packed
      // predicate-major mirror — one linear read, no arena striding.
      PostingsSpan span = state.target.Postings(atom.predicate);
      for (size_t j = 0; j < cands.count; ++j) {
        ++state.candidates_scanned;
        if (TryMatch(atom, span.view(j), sub, state.trail)) {
          if (Search(atoms, remaining, sub, state)) found = true;
        }
        while (state.trail.size() > trail_mark) {
          sub.Unbind(state.trail.back());
          state.trail.pop_back();
        }
        if (state.visitor_stop || state.exhausted) break;
      }
    } else {
      for (size_t j = 0; j < cands.count; ++j) {
        if (j + kScanPrefetchDistance < cands.count) {
          state.target.PrefetchTerms(cands.ids[j + kScanPrefetchDistance]);
        }
        ++state.candidates_scanned;
        AtomView candidate = state.target.view(cands.ids[j]);
        if (TryMatch(atom, candidate, sub, state.trail)) {
          if (Search(atoms, remaining, sub, state)) found = true;
        }
        while (state.trail.size() > trail_mark) {
          sub.Unbind(state.trail.back());
          state.trail.pop_back();
        }
        if (state.visitor_stop || state.exhausted) break;
      }
    }
  }

  remaining.push_back(atom_index);
  std::swap(remaining[best_pos], remaining.back());
  return found;
}

/// Runs one search and flushes counters. Returns the tri-state verdict.
HomSearchOutcome RunSearch(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options, bool* found_any) {
  Substitution sub = seed;
  std::vector<size_t> remaining(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) remaining[i] = i;
  SearchState state(target, visitor, options.max_steps, options.governor);
  bool found = Search(atoms, remaining, sub, state);
  if (found_any != nullptr) *found_any = found;
  if (options.counters != nullptr) {
    ++options.counters->searches;
    options.counters->steps += state.steps;
    options.counters->candidates_scanned += state.candidates_scanned;
    options.counters->postings_intersections += state.postings_intersections;
    options.counters->candidates_pruned_by_intersection +=
        state.candidates_pruned_by_intersection;
    if (state.exhausted) ++options.counters->budget_exhaustions;
  }
  if (found) return HomSearchOutcome::kFound;
  // An exhausted budget means the unexplored remainder could still hold a
  // homomorphism — never report kNotFound in that case.
  return state.exhausted ? HomSearchOutcome::kExhausted
                         : HomSearchOutcome::kNotFound;
}

}  // namespace

HomSearchOutcome SearchHomomorphism(const std::vector<Atom>& atoms,
                                    const Instance& target,
                                    const Substitution& seed,
                                    const HomomorphismOptions& options,
                                    Substitution* found) {
  std::function<bool(const Substitution&)> capture =
      [found](const Substitution& sub) {
        if (found != nullptr) *found = sub;
        return false;  // stop after the first hit
      };
  return RunSearch(atoms, target, seed, capture, options, nullptr);
}

std::optional<Substitution> FindHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed, const HomomorphismOptions& options) {
  Substitution witness;
  if (SearchHomomorphism(atoms, target, seed, options, &witness) ==
      HomSearchOutcome::kFound) {
    return witness;
  }
  return std::nullopt;
}

void ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options) {
  HomomorphismOptions unbounded = options;
  unbounded.max_steps = 0;  // enumeration is always exhaustive
  RunSearch(atoms, target, seed, visitor, unbounded, nullptr);
}

namespace {

/// Shared body of the pinned enumeration: `view_at(i)` yields the i-th
/// pinned candidate as an AtomView (out of `count`), whatever the caller's
/// candidate representation — arena ids or materialized atoms.
/// `kHomogeneous` asserts every candidate already carries the pinned
/// atom's predicate (true for postings-backed id ranges), letting the
/// scan drop the per-candidate predicate filter.
template <bool kHomogeneous, typename ViewAt>
void PinnedImpl(const std::vector<Atom>& atoms, size_t pinned_index,
                size_t count, ViewAt view_at, const Instance& target,
                const Substitution& seed,
                const std::function<bool(const Substitution&)>& visitor,
                const HomomorphismOptions& options) {
  const Atom& pinned = atoms[pinned_index];
  Substitution sub = seed;
  std::vector<size_t> remaining;
  remaining.reserve(atoms.size() - 1);
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i != pinned_index) remaining.push_back(i);
  }
  SearchState state(target, visitor, /*max_steps=*/0, options.governor);
  for (size_t c = 0; c < count; ++c) {
    AtomView candidate = view_at(c);
    if (!kHomogeneous && candidate.predicate() != pinned.predicate) continue;
    ++state.candidates_scanned;
    if (state.governor != nullptr &&
        state.candidates_scanned % kGovernorStride == 0 &&
        !state.governor->Check().ok()) {
      state.exhausted = true;
      break;
    }
    const size_t trail_mark = state.trail.size();
    if (TryMatch(pinned, candidate, sub, state.trail)) {
      Search(atoms, remaining, sub, state);
    }
    while (state.trail.size() > trail_mark) {
      sub.Unbind(state.trail.back());
      state.trail.pop_back();
    }
    if (state.visitor_stop || state.exhausted) break;
  }
  if (options.counters != nullptr) {
    ++options.counters->searches;
    options.counters->steps += state.steps;
    options.counters->candidates_scanned += state.candidates_scanned;
    options.counters->postings_intersections += state.postings_intersections;
    options.counters->candidates_pruned_by_intersection +=
        state.candidates_pruned_by_intersection;
    if (state.exhausted) ++options.counters->budget_exhaustions;
  }
}

}  // namespace

void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const std::vector<Atom>& pinned_candidates, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options) {
  PinnedImpl</*kHomogeneous=*/false>(
      atoms, pinned_index, pinned_candidates.size(),
      [&](size_t c) { return ViewOf(pinned_candidates[c]); }, target, seed,
      visitor, options);
}

void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const std::vector<AtomId>& pinned_ids, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options) {
  ForEachHomomorphismPinned(atoms, pinned_index, pinned_ids.data(),
                            pinned_ids.size(), target, seed, visitor,
                            options);
}

void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const AtomId* pinned_ids, size_t pinned_count, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options) {
  PinnedImpl</*kHomogeneous=*/true>(
      atoms, pinned_index, pinned_count,
      [&](size_t c) {
        if (c + kScanPrefetchDistance < pinned_count) {
          target.PrefetchTerms(pinned_ids[c + kScanPrefetchDistance]);
        }
        return target.view(pinned_ids[c]);
      },
      target, seed, visitor, options);
}

std::vector<std::vector<Term>> EvaluateCQ(const ConjunctiveQuery& q,
                                          const Instance& instance,
                                          const HomomorphismOptions& options) {
  std::set<std::vector<Term>> answers;
  std::function<bool(const Substitution&)> collect =
      [&](const Substitution& sub) {
        std::vector<Term> tuple = sub.Apply(q.answer_vars);
        for (const Term& t : tuple) {
          if (!t.IsConstant()) return true;  // nulls are not answers
        }
        answers.insert(std::move(tuple));
        return true;
      };
  ForEachHomomorphism(q.body, instance, Substitution(), collect, options);
  return std::vector<std::vector<Term>>(answers.begin(), answers.end());
}

std::vector<std::vector<Term>> EvaluateUCQ(const UnionOfCQs& q,
                                           const Instance& instance,
                                           const HomomorphismOptions& options) {
  std::set<std::vector<Term>> answers;
  for (const ConjunctiveQuery& disjunct : q.disjuncts) {
    if (options.governor != nullptr && options.governor->tripped()) break;
    for (std::vector<Term>& tuple : EvaluateCQ(disjunct, instance, options)) {
      answers.insert(std::move(tuple));
    }
  }
  return std::vector<std::vector<Term>>(answers.begin(), answers.end());
}

HomSearchOutcome TupleInAnswerBudgeted(const ConjunctiveQuery& q,
                                       const Instance& instance,
                                       const std::vector<Term>& tuple,
                                       const HomomorphismOptions& options) {
  if (tuple.size() != q.answer_vars.size()) {
    return HomSearchOutcome::kNotFound;
  }
  Substitution seed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Term& v = q.answer_vars[i];
    if (!v.IsVariable()) {
      if (v != tuple[i]) return HomSearchOutcome::kNotFound;
      continue;
    }
    auto existing = seed.Lookup(v);
    if (existing.has_value()) {
      if (*existing != tuple[i]) return HomSearchOutcome::kNotFound;
      continue;
    }
    seed.Bind(v, tuple[i]);
  }
  return SearchHomomorphism(q.body, instance, seed, options);
}

bool TupleInAnswer(const ConjunctiveQuery& q, const Instance& instance,
                   const std::vector<Term>& tuple) {
  return TupleInAnswerBudgeted(q, instance, tuple) ==
         HomSearchOutcome::kFound;
}

bool HoldsIn(const ConjunctiveQuery& q, const Instance& instance) {
  return FindHomomorphism(q.body, instance).has_value();
}

bool CQContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (q1.answer_vars.size() != q2.answer_vars.size()) return false;
  FrozenQuery frozen = Freeze(q1);
  return TupleInAnswer(q2, frozen.database, frozen.answer_tuple);
}

bool UCQContainedIn(const UnionOfCQs& q1, const UnionOfCQs& q2) {
  for (const ConjunctiveQuery& disjunct : q1.disjuncts) {
    FrozenQuery frozen = Freeze(disjunct);
    bool covered = false;
    for (const ConjunctiveQuery& target : q2.disjuncts) {
      if (target.answer_vars.size() == disjunct.answer_vars.size() &&
          TupleInAnswer(target, frozen.database, frozen.answer_tuple)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace omqc
