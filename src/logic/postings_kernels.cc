#include "logic/postings_kernels.h"

#include <algorithm>

#if defined(OMQC_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace omqc {
namespace {

/// Length ratio beyond which the merge gallops through the longer list
/// instead of stepping it linearly.
constexpr size_t kGallopSkew = 16;

/// Gallop kernel: for each element of the short list, doubling-search the
/// long list. Preconditions as in the header.
void IntersectGallop(const AtomId* small, size_t ns, const AtomId* large,
                     size_t nl, std::vector<AtomId>& out) {
  size_t lo = 0;
  for (size_t i = 0; i < ns && lo < nl; ++i) {
    const AtomId v = small[i];
    // Doubling probe from the current frontier.
    size_t step = 1;
    size_t hi = lo;
    while (hi < nl && large[hi] < v) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    if (hi > nl) hi = nl;
    const AtomId* pos = std::lower_bound(large + lo, large + hi, v);
    lo = static_cast<size_t>(pos - large);
    if (lo < nl && large[lo] == v) {
      out.push_back(v);
      ++lo;
    }
  }
}

}  // namespace

void IntersectPostingsScalar(const AtomId* a, size_t na, const AtomId* b,
                             size_t nb, std::vector<AtomId>& out) {
  if (na == 0 || nb == 0) return;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopSkew) {
    IntersectGallop(a, na, b, nb, out);
    return;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const AtomId x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out.push_back(x);
      ++i;
      ++j;
    }
  }
}

#if defined(OMQC_SIMD_AVX2)

namespace {

/// AVX2 dense-merge kernel: per element of the (shorter) list a, one
/// 8-lane compare against the current block of b, with whole-block skips
/// when the block is exhausted — O(na + nb/8) vector steps. Skewed inputs
/// are routed to the gallop kernel before this is reached.
void IntersectAvx2(const AtomId* a, size_t na, const AtomId* b, size_t nb,
                   std::vector<AtomId>& out) {
  size_t i = 0, j = 0;
  while (i < na && j + 8 <= nb) {
    const AtomId v = a[i];
    if (b[j + 7] < v) {
      j += 8;  // the whole block is below v: skip it in one step
      continue;
    }
    const __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
    const __m256i bb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int hit = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(vv, bb)));
    if (hit != 0) out.push_back(v);
    ++i;
  }
  // Scalar tail: fewer than 8 elements left in b (or a exhausted).
  while (i < na && j < nb) {
    const AtomId x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out.push_back(x);
      ++i;
      ++j;
    }
  }
}

bool CpuHasAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

}  // namespace

bool PostingsSimdEnabled() { return CpuHasAvx2(); }

void IntersectPostings(const AtomId* a, size_t na, const AtomId* b,
                       size_t nb, std::vector<AtomId>& out) {
  if (na == 0 || nb == 0) return;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopSkew || !CpuHasAvx2()) {
    IntersectPostingsScalar(a, na, b, nb, out);
    return;
  }
  IntersectAvx2(a, na, b, nb, out);
}

#else  // !OMQC_SIMD_AVX2

bool PostingsSimdEnabled() { return false; }

void IntersectPostings(const AtomId* a, size_t na, const AtomId* b,
                       size_t nb, std::vector<AtomId>& out) {
  IntersectPostingsScalar(a, na, b, nb, out);
}

#endif  // OMQC_SIMD_AVX2

void IntersectPostingsKWay(
    std::vector<const std::vector<AtomId>*>& lists, std::vector<AtomId>& out,
    std::vector<AtomId>& scratch) {
  out.clear();
  if (lists.empty()) return;
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<AtomId>* x, const std::vector<AtomId>* y) {
              return x->size() < y->size();
            });
  if (lists.size() == 1) {
    out.assign(lists[0]->begin(), lists[0]->end());
    return;
  }
  IntersectPostings(lists[0]->data(), lists[0]->size(), lists[1]->data(),
                    lists[1]->size(), out);
  for (size_t k = 2; k < lists.size() && !out.empty(); ++k) {
    scratch.swap(out);
    out.clear();
    IntersectPostings(scratch.data(), scratch.size(), lists[k]->data(),
                      lists[k]->size(), out);
  }
}

std::pair<const AtomId*, const AtomId*> PostingsIdRange(
    const std::vector<AtomId>& ids, AtomId lo, AtomId hi) {
  const AtomId* first = std::lower_bound(ids.data(), ids.data() + ids.size(),
                                         lo);
  const AtomId* last = std::lower_bound(first, ids.data() + ids.size(), hi);
  return {first, last};
}

}  // namespace omqc
