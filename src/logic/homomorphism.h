// Homomorphism search: the CQ evaluation engine (Sec. 2).
//
// The evaluator is a backtracking join over the instance's per-predicate and
// per-(predicate,position,term) indexes, picking at each step the body atom
// with the most bound arguments (most-constrained-first). This is the
// workhorse behind chase applicability checks, certain-answer computation,
// CQ containment and the small-witness containment algorithm.

#ifndef OMQC_LOGIC_HOMOMORPHISM_H_
#define OMQC_LOGIC_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/substitution.h"

namespace omqc {

/// Options controlling a homomorphism search.
struct HomomorphismOptions {
  /// Upper bound on backtracking steps; 0 means unlimited. When exhausted
  /// the search reports "not found" pessimistically — callers that need
  /// exactness must leave this at 0 (the default everywhere in the library).
  size_t max_steps = 0;
};

/// Finds one homomorphism h from `atoms` into `target` extending `seed`
/// (h is the identity on constants; nulls in `atoms` are treated as
/// constants, i.e. they must map to themselves).
/// Returns nullopt if none exists.
std::optional<Substitution> FindHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed = Substitution(),
    const HomomorphismOptions& options = HomomorphismOptions());

/// Enumerates all homomorphisms from `atoms` into `target` extending `seed`,
/// invoking `visitor` for each; the visitor returns false to stop early.
void ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor);

/// Evaluates q over I: the set of answer tuples h(x̄) for homomorphisms h
/// from the body into I with h(x̄) consisting of constants only
/// (paper Sec. 2: the evaluation q(I) collects constant tuples).
/// For Boolean q the result contains one empty tuple iff I |= q.
std::vector<std::vector<Term>> EvaluateCQ(const ConjunctiveQuery& q,
                                          const Instance& instance);

/// Evaluates a UCQ: union of the disjunct evaluations, deduplicated.
std::vector<std::vector<Term>> EvaluateUCQ(const UnionOfCQs& q,
                                           const Instance& instance);

/// True iff tuple ∈ q(I).
bool TupleInAnswer(const ConjunctiveQuery& q, const Instance& instance,
                   const std::vector<Term>& tuple);

/// True iff the Boolean reading of q holds in I (∃ homomorphism; answer
/// variables existentially quantified). Unlike EvaluateCQ this does not
/// require answer images to be constants.
bool HoldsIn(const ConjunctiveQuery& q, const Instance& instance);

/// Classical CQ containment q1 ⊆ q2 (no ontology): freeze q1 and test
/// whether the frozen answer tuple is in q2(D_{q1}) (Chandra–Merlin).
bool CQContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// UCQ containment: every disjunct of q1 is contained in some... more
/// precisely, in the union (Sagiv–Yannakakis: q1 ⊆ q2 iff each disjunct of
/// q1 is contained in some disjunct of q2).
bool UCQContainedIn(const UnionOfCQs& q1, const UnionOfCQs& q2);

}  // namespace omqc

#endif  // OMQC_LOGIC_HOMOMORPHISM_H_
