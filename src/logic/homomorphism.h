// Homomorphism search: the CQ evaluation engine (Sec. 2).
//
// The evaluator is a backtracking join over the instance's per-predicate and
// per-(predicate,position,term) indexes, picking at each step the body atom
// with the most bound arguments (most-constrained-first). Per atom, the
// candidate set is the k-way sorted-postings INTERSECTION over all bound
// argument positions (src/logic/postings_kernels.h): candidates shrink
// multiplicatively with each bound position instead of scanning the single
// smallest list, any empty bound position refutes the atom outright, and a
// fully unbound atom sweeps the predicate through its packed predicate-major
// postings (Instance::Postings). This is the workhorse behind chase
// applicability checks, certain-answer computation, CQ containment and the
// small-witness containment algorithm.
//
// Budget semantics: a bounded search (max_steps > 0) has THREE outcomes —
// found / exhaustively refuted / stopped at the budget. The tri-state
// SearchHomomorphism / TupleInAnswerBudgeted entry points report which one
// occurred; callers that need soundness (the containment engine) map
// kExhausted to an "unknown" verdict, never to a negative answer. The
// bool/optional wrappers below run unbounded and are always exact.

#ifndef OMQC_LOGIC_HOMOMORPHISM_H_
#define OMQC_LOGIC_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/substitution.h"

namespace omqc {

class ResourceGovernor;

/// Observability counters for homomorphism searches. Accumulated (never
/// reset) by every search that is handed a non-null pointer; not
/// synchronized — use one instance per thread and merge (EngineStats does).
struct HomCounters {
  /// Number of searches run.
  size_t searches = 0;
  /// Backtracking steps (recursive extension attempts) across searches.
  size_t steps = 0;
  /// Candidate atoms scanned across all index lookups.
  size_t candidates_scanned = 0;
  /// Searches that stopped at their max_steps budget.
  size_t budget_exhaustions = 0;
  /// k-way sorted-postings intersections performed (one per candidate set
  /// built from >= 2 bound argument positions).
  size_t postings_intersections = 0;
  /// Candidates the intersection removed relative to the single smallest
  /// postings list (the pre-kernel heuristic's scan set): the atoms the
  /// backtracking loop never had to touch.
  size_t candidates_pruned_by_intersection = 0;

  void Merge(const HomCounters& other) {
    searches += other.searches;
    steps += other.steps;
    candidates_scanned += other.candidates_scanned;
    budget_exhaustions += other.budget_exhaustions;
    postings_intersections += other.postings_intersections;
    candidates_pruned_by_intersection +=
        other.candidates_pruned_by_intersection;
  }
};

/// Options controlling a homomorphism search.
struct HomomorphismOptions {
  /// Upper bound on backtracking steps; 0 means unlimited. A search that
  /// hits the bound reports HomSearchOutcome::kExhausted — it does NOT
  /// claim non-existence (see the header comment).
  size_t max_steps = 0;
  /// Optional counters to accumulate into (may be null).
  HomCounters* counters = nullptr;
  /// Optional shared request governor (base/governor.h). Consulted every
  /// 64th backtracking step; a trip surfaces as kExhausted, exactly like
  /// hitting max_steps — it removes information, never flips a verdict.
  ResourceGovernor* governor = nullptr;
};

/// The three possible verdicts of a budgeted search.
enum class HomSearchOutcome {
  kFound,      ///< a homomorphism exists (witness produced)
  kNotFound,   ///< the search space was exhausted: none exists
  kExhausted,  ///< max_steps hit before a conclusion — NOT a refutation
};

/// Finds one homomorphism h from `atoms` into `target` extending `seed`
/// (h is the identity on constants; nulls in `atoms` are treated as
/// constants, i.e. they must map to themselves). On kFound, `*found` (when
/// non-null) receives the witness.
HomSearchOutcome SearchHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed = Substitution(),
    const HomomorphismOptions& options = HomomorphismOptions(),
    Substitution* found = nullptr);

/// Unbounded convenience wrapper: returns the witness or nullopt, exactly.
/// (Budgeted callers must use SearchHomomorphism: with max_steps set this
/// wrapper cannot distinguish refutation from exhaustion.)
std::optional<Substitution> FindHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed = Substitution(),
    const HomomorphismOptions& options = HomomorphismOptions());

/// Enumerates all homomorphisms from `atoms` into `target` extending `seed`,
/// invoking `visitor` for each; the visitor returns false to stop early.
/// `options.max_steps` is ignored (enumeration is always exhaustive);
/// `options.counters` is honored.
void ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Like ForEachHomomorphism, but the designated atom `atoms[pinned_index]`
/// draws its candidate matches from `pinned_candidates` instead of the
/// target's index, while every other atom still matches inside `target`.
/// This is the delta-decomposition primitive of the semi-naive chase: with
/// `pinned_candidates` the atoms derived in the previous round, only
/// homomorphisms whose designated atom uses a new atom are enumerated.
/// Candidates with a different predicate are skipped; a homomorphism
/// matched by several pinned positions is reported once per position
/// (callers dedupe, e.g. by trigger key).
void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const std::vector<Atom>& pinned_candidates, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Id-based overload: the pinned candidates are atom ids into `target`'s
/// arena, bound in place with zero materialization. Every id must refer
/// to an atom with the pinned atom's predicate (postings-backed lists
/// are): the scan skips the per-candidate predicate filter. This is the
/// variant the semi-naive chase uses — its delta is a contiguous id range
/// of the growing chase instance.
void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const std::vector<AtomId>& pinned_ids, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Raw-range variant of the id-based pinned enumeration: `pinned_ids`
/// points at `pinned_count` sorted arena ids of `target`, all carrying
/// the pinned atom's predicate (no per-candidate predicate filter). The
/// chase hands in subranges of the per-predicate or by-arg postings
/// directly (its delta window is a contiguous id range — see
/// PostingsIdRange / Instance::ArgIdRange), with no copy.
void ForEachHomomorphismPinned(
    const std::vector<Atom>& atoms, size_t pinned_index,
    const AtomId* pinned_ids, size_t pinned_count, const Instance& target,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visitor,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Evaluates q over I: the set of answer tuples h(x̄) for homomorphisms h
/// from the body into I with h(x̄) consisting of constants only
/// (paper Sec. 2: the evaluation q(I) collects constant tuples).
/// For Boolean q the result contains one empty tuple iff I |= q.
/// `options.max_steps` is ignored (evaluation enumerates exhaustively);
/// counters and the governor are honored. If the governor trips the
/// returned answer set may be incomplete — callers that need completeness
/// check `options.governor->tripped()` afterwards (every answer returned
/// is still sound).
std::vector<std::vector<Term>> EvaluateCQ(
    const ConjunctiveQuery& q, const Instance& instance,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Evaluates a UCQ: union of the disjunct evaluations, deduplicated.
/// Same options/governor contract as EvaluateCQ.
std::vector<std::vector<Term>> EvaluateUCQ(
    const UnionOfCQs& q, const Instance& instance,
    const HomomorphismOptions& options = HomomorphismOptions());

/// Budgeted membership test "tuple ∈ q(I)". kExhausted means the search
/// stopped at options.max_steps without a verdict.
HomSearchOutcome TupleInAnswerBudgeted(
    const ConjunctiveQuery& q, const Instance& instance,
    const std::vector<Term>& tuple,
    const HomomorphismOptions& options = HomomorphismOptions());

/// True iff tuple ∈ q(I). Unbounded, always exact.
bool TupleInAnswer(const ConjunctiveQuery& q, const Instance& instance,
                   const std::vector<Term>& tuple);

/// True iff the Boolean reading of q holds in I (∃ homomorphism; answer
/// variables existentially quantified). Unlike EvaluateCQ this does not
/// require answer images to be constants.
bool HoldsIn(const ConjunctiveQuery& q, const Instance& instance);

/// Classical CQ containment q1 ⊆ q2 (no ontology): freeze q1 and test
/// whether the frozen answer tuple is in q2(D_{q1}) (Chandra–Merlin).
bool CQContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// UCQ containment: every disjunct of q1 is contained in some... more
/// precisely, in the union (Sagiv–Yannakakis: q1 ⊆ q2 iff each disjunct of
/// q1 is contained in some disjunct of q2).
bool UCQContainedIn(const UnionOfCQs& q1, const UnionOfCQs& q2);

}  // namespace omqc

#endif  // OMQC_LOGIC_HOMOMORPHISM_H_
