// Instances and databases (Sec. 2 of the paper).
//
// An Instance is a finite set of atoms over constants and nulls, with
// per-predicate and per-(predicate,position,term) indexes that back the
// homomorphism search engine. A database is an instance whose atoms are
// facts (null-free); `IsDatabase()` checks this.
//
// Storage is columnar (DESIGN.md "Atom storage layout"): every atom is
// stored exactly once in an append-only arena — one contiguous Term pool
// plus a 12-byte {Predicate, offset, arity} record per atom — and every
// side structure (dedup table, per-predicate and per-argument indexes,
// insertion order) is a postings list of 32-bit atom ids. Hot paths read
// atoms as AtomView spans via `view(id)` / `IdsWith*`; the materializing
// accessors (`atoms()`, `AtomsWith*`) copy and are for cold paths only.
//
// Full-predicate sweeps additionally get a predicate-MAJOR mirror of the
// terms (DESIGN.md "Postings kernels"): each predicate's postings carry a
// packed copy of their atoms' arguments, appended at Add time, so a sweep
// over one predicate is a single linear read instead of a stride through
// the interleaved shared pool. `Postings(p)` exposes that layout as a
// PostingsSpan; it is what the homomorphism engine's unindexed fallback
// and the scan benches iterate.

#ifndef OMQC_LOGIC_INSTANCE_H_
#define OMQC_LOGIC_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"

namespace omqc {

class ByteWriter;
class ByteReader;

/// Index of an atom within one Instance's arena: dense, assigned in
/// insertion order, stable for the lifetime of the instance.
using AtomId = uint32_t;

class AtomRange;

/// One predicate's postings: the atom ids (ascending — ids are assigned in
/// insertion order) plus a predicate-major packed mirror of the atoms'
/// argument terms. `terms` holds entry j's arguments contiguously starting
/// at `begins[j]`; a full sweep over the predicate therefore reads one
/// flat array front to back, never striding the shared arena.
struct PredicatePostings {
  /// Sentinel for `uniform_arity`: entries have differing arities (only
  /// possible for hand-built atoms whose argument count disagrees across
  /// inserts) and views must go through `begins`.
  static constexpr uint32_t kMixedArity = 0xFFFFFFFFu;

  std::vector<AtomId> ids;
  std::vector<uint32_t> begins;  ///< parallel to ids; start offset in terms
  std::vector<Term> terms;       ///< packed predicate-major term mirror
  /// Common arity of every entry, or kMixedArity. In the (ubiquitous)
  /// uniform case entry j's terms sit at j * uniform_arity, so a sweep is
  /// pure pointer arithmetic over `terms` with no index loads.
  uint32_t uniform_arity = kMixedArity;
};

/// Zero-copy view over one predicate's postings in insertion order.
/// Views returned by `view(j)` point into the packed mirror and are
/// invalidated by the next Add, exactly like Instance::view spans.
class PostingsSpan {
 public:
  PostingsSpan(Predicate p, const PredicatePostings* postings)
      : predicate_(p), postings_(postings),
        stride_(postings->uniform_arity) {}

  Predicate predicate() const { return predicate_; }
  size_t size() const { return postings_->ids.size(); }
  bool empty() const { return postings_->ids.empty(); }
  AtomId id(size_t j) const { return postings_->ids[j]; }
  const std::vector<AtomId>& ids() const { return postings_->ids; }

  /// Entry j as a span into the packed predicate-major mirror.
  AtomView view(size_t j) const {
    if (stride_ != PredicatePostings::kMixedArity) {
      return AtomView(predicate_, postings_->terms.data() + j * stride_,
                      stride_);
    }
    const uint32_t b = postings_->begins[j];
    const uint32_t e = j + 1 < postings_->begins.size()
                           ? postings_->begins[j + 1]
                           : static_cast<uint32_t>(postings_->terms.size());
    return AtomView(predicate_, postings_->terms.data() + b, e - b);
  }

 private:
  Predicate predicate_;
  const PredicatePostings* postings_;
  size_t stride_;  ///< uniform arity snapshot, or kMixedArity
};

/// A finite set of atoms with lookup indexes. Append-only plus bulk ops;
/// atom identity is set semantics (duplicates are ignored).
class Instance {
 public:
  Instance() = default;
  explicit Instance(const std::vector<Atom>& atoms) { AddBatch(atoms); }

  /// Outcome of an insert: the atom's id (fresh or pre-existing) and
  /// whether the insert actually extended the instance.
  struct AddOutcome {
    AtomId id;
    bool inserted;
  };

  /// Inserts the atom `view` refers to (copying its terms into the arena);
  /// no-op if an equal atom is already present. `view` must not point into
  /// this instance's own arena unless the atom is already present.
  AddOutcome AddView(AtomView view);

  /// Inserts `atom`; returns true iff it was not already present.
  bool Add(const Atom& atom) { return AddView(ViewOf(atom)).inserted; }
  /// Inserts all atoms of `other`.
  void AddAll(const Instance& other);

  /// Bulk insert with batched dedup probes: hashes are computed a few
  /// atoms ahead and the dedup slots prefetched before they are probed, so
  /// the table's cache misses overlap instead of serializing. Returns the
  /// number of atoms actually inserted (duplicates are skipped as in Add).
  size_t AddBatch(const std::vector<Atom>& atoms);

  /// Batched membership: how many of `atoms` are present. Same pipelined
  /// hash/prefetch schedule as AddBatch, for probe-heavy callers.
  size_t CountContained(const std::vector<Atom>& atoms) const;

  bool Contains(AtomView view) const { return FindId(view).has_value(); }
  bool Contains(const Atom& atom) const { return Contains(ViewOf(atom)); }

  /// The id of the equal atom, if present. O(1); never materializes.
  std::optional<AtomId> FindId(AtomView view) const;
  std::optional<AtomId> FindId(const Atom& atom) const {
    return FindId(ViewOf(atom));
  }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// The atom with the given id as a zero-copy span into the arena.
  /// Invalidated by the next Add (the term pool may reallocate); the id
  /// itself stays valid forever.
  AtomView view(AtomId id) const {
    const AtomRecord& r = records_[id];
    return AtomView(r.predicate, term_pool_.data() + r.offset, r.arity);
  }

  /// A materialized (owning) copy of the atom with the given id.
  Atom MaterializeAtom(AtomId id) const { return view(id).Materialize(); }

  /// All atoms in insertion order, materialized lazily per element.
  /// Iteration compiles with `for (const Atom& a : inst.atoms())`; hot
  /// loops should iterate ids and call view() instead.
  AtomRange atoms() const;

  /// Ids of atoms with the given predicate, in insertion order (empty if
  /// none). The homomorphism engine's fallback candidate list.
  const std::vector<AtomId>& IdsWith(Predicate p) const;

  /// The predicate's postings as a packed predicate-major span: the
  /// layout-aware way to sweep every atom of one predicate (the id loop
  /// over IdsWith + view(id) strides the shared arena; this reads one
  /// contiguous terms array). Empty span if the predicate is absent.
  PostingsSpan Postings(Predicate p) const;

  /// Prefetch hint: pulls the argument terms of atom `id` toward the
  /// cache. Used by candidate scans that know their next few ids.
  void PrefetchTerms(AtomId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(term_pool_.data() + records_[id].offset);
#else
    (void)id;
#endif
  }

  /// Ids of atoms with predicate `p` whose argument at `position` equals
  /// `t`. Backed by an index; O(result size). The list is sorted: ids are
  /// appended in insertion order, so it supports the same binary-searched
  /// windows as the per-predicate postings (see ArgIdRange).
  const std::vector<AtomId>& IdsWithArg(Predicate p, int position,
                                        const Term& t) const;

  /// The by-arg postings of (p, position, t) windowed to the arena-id
  /// range [lo, hi), as a sorted [first, last) span (two binary searches;
  /// no copy). The semi-naive chase's delta scan for a body atom with a
  /// constant argument is exactly this window: it visits only delta atoms
  /// that already carry the constant, where the per-predicate postings
  /// window would scan the predicate's whole delta.
  std::pair<const AtomId*, const AtomId*> ArgIdRange(Predicate p,
                                                     int position,
                                                     const Term& t, AtomId lo,
                                                     AtomId hi) const;

  /// Materializing counterparts of IdsWith / IdsWithArg (cold paths).
  std::vector<Atom> AtomsWith(Predicate p) const;
  std::vector<Atom> AtomsWithArg(Predicate p, int position,
                                 const Term& t) const;

  /// The active domain dom(I): all terms occurring in the instance.
  std::vector<Term> ActiveDomain() const;
  /// The constants of the active domain.
  std::vector<Term> ActiveDomainConstants() const;

  /// The set of predicates occurring in the instance.
  Schema InducedSchema() const;

  /// True iff every atom is a fact (no nulls, no variables).
  bool IsDatabase() const;

  /// The subinstance induced by the given set of terms: all atoms whose
  /// arguments are all contained in `terms`.
  Instance InducedBy(const std::set<Term>& terms) const;

  /// Maximal connected components w.r.t. shared terms (Sec. 7.1).
  /// 0-ary atoms are excluded, matching the paper's footnote 5.
  std::vector<Instance> ConnectedComponents() const;

  /// Bytes held by the arena and the id-based indexes: term pool, atom
  /// records, dedup slots (+ hash tags), posting entries and the
  /// predicate-major term mirror. O(1), exact for the data proper
  /// (container bookkeeping overhead excluded); this is what the chase
  /// charges against the governor's memory budget.
  size_t MemoryBytes() const {
    // Per term occurrence: the pool entry, its mirror copy in the
    // predicate-major postings, and one by_arg_ posting entry. Per atom:
    // the record, one predicate posting id and one mirror begin offset.
    return term_pool_.size() * (2 * sizeof(Term) + sizeof(AtomId)) +
           records_.size() *
               (sizeof(AtomRecord) + sizeof(AtomId) + sizeof(uint32_t)) +
           slots_.size() * (sizeof(AtomId) + sizeof(uint16_t));
  }

  /// Serializes the arena into `out` (logic/serialize.cc): a predicate
  /// dictionary, a term dictionary (constants and variables by *name*,
  /// nulls by id) and the atom records in insertion order. The dedup
  /// table and the postings indexes are NOT stored — Restore rebuilds
  /// them by re-inserting the atoms in order, which reproduces the exact
  /// AtomId assignment and index contents of the original.
  void Snapshot(ByteWriter& out) const;

  /// Inverse of Snapshot. Terms are re-interned by name (so the snapshot
  /// is stable across processes and interning orders); restored null ids
  /// are reserved via Term::ReserveNullIds so later FreshNull calls never
  /// collide. Fails (without crashing) on truncated or malformed input.
  static Result<Instance> Restore(ByteReader& in);

  /// Multi-line listing "R(a,b). S(b)." sorted for stable output.
  std::string ToString() const;

  bool operator==(const Instance& other) const {
    if (size() != other.size()) return false;
    for (AtomId id = 0; id < records_.size(); ++id) {
      if (!other.Contains(view(id))) return false;
    }
    return true;
  }

 private:
  /// Per-atom arena record: which predicate, where its terms live in the
  /// pool, how many. 12 bytes; the terms themselves are contiguous in
  /// term_pool_ so a scan over one atom's arguments never pointer-chases.
  struct AtomRecord {
    Predicate predicate;
    uint32_t offset;
    uint8_t arity;
  };

  struct ArgKey {
    int32_t pred_id;
    int position;
    Term term;
    bool operator==(const ArgKey& o) const {
      return pred_id == o.pred_id && position == o.position && term == o.term;
    }
  };
  struct ArgKeyHash {
    size_t operator()(const ArgKey& k) const {
      size_t seed = std::hash<int32_t>{}(k.pred_id);
      HashCombine(seed, static_cast<size_t>(k.position));
      HashCombine(seed, TermHash{}(k.term));
      return seed;
    }
  };

  static constexpr AtomId kEmptySlot = 0xFFFFFFFFu;

  /// Rebuilds the open-addressing dedup table with `new_size` slots
  /// (power of two).
  void Rehash(size_t new_size);

  /// AddView with the atom's hash already computed (the batched paths
  /// hash ahead of the probe to overlap the table's cache misses).
  AddOutcome AddViewHashed(AtomView view, size_t hash);

  /// The dedup slot holding an atom equal to `v` (hash precomputed), or
  /// nullopt. Tags filter arena comparisons: a slot's terms are only
  /// touched when its 16-bit hash fragment matches.
  std::optional<AtomId> ProbeHashed(AtomView v, size_t hash) const;

  /// Prefetches the dedup slot cache lines `hash` lands on.
  void PrefetchSlot(size_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!slots_.empty()) {
      const size_t idx = hash & (slots_.size() - 1);
      __builtin_prefetch(slots_.data() + idx);
      __builtin_prefetch(slot_tags_.data() + idx);
    }
#else
    (void)hash;
#endif
  }

  /// The 16-bit tag stored next to a slot: high hash bits (the table index
  /// uses the low bits, so the tag adds independent discrimination).
  static uint16_t TagOf(size_t hash) {
    return static_cast<uint16_t>(hash >> 48);
  }

  /// Arena: one flat term pool + one record per atom, in insertion order.
  std::vector<Term> term_pool_;
  std::vector<AtomRecord> records_;
  /// Dedup table: open addressing (linear probing, load factor <= 1/2)
  /// over atom ids, hashed/compared against the arena in place — Add and
  /// Contains never materialize a temporary Atom. slot_tags_ carries a
  /// 16-bit hash fragment per slot so probe chains reject mismatches
  /// without the dependent load into records_/term_pool_.
  std::vector<AtomId> slots_;
  std::vector<uint16_t> slot_tags_;
  /// Id postings plus the predicate-major term mirror, in insertion order.
  std::unordered_map<int32_t, PredicatePostings> by_predicate_;
  std::unordered_map<ArgKey, std::vector<AtomId>, ArgKeyHash> by_arg_;
};

/// Lazily materializing view over an Instance's atoms in insertion order.
/// Dereferencing yields an owning Atom by value; `for (const Atom& a : r)`
/// binds each to a loop-scoped temporary.
class AtomRange {
 public:
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Atom;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Atom;

    const_iterator(const Instance* inst, AtomId id) : inst_(inst), id_(id) {}
    Atom operator*() const { return inst_->MaterializeAtom(id_); }
    const_iterator& operator++() {
      ++id_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++id_;
      return out;
    }
    bool operator==(const const_iterator& o) const { return id_ == o.id_; }
    bool operator!=(const const_iterator& o) const { return id_ != o.id_; }

   private:
    const Instance* inst_;
    AtomId id_;
  };

  explicit AtomRange(const Instance* inst) : inst_(inst) {}

  const_iterator begin() const { return const_iterator(inst_, 0); }
  const_iterator end() const {
    return const_iterator(inst_, static_cast<AtomId>(inst_->size()));
  }
  size_t size() const { return inst_->size(); }
  bool empty() const { return inst_->empty(); }
  Atom front() const { return inst_->MaterializeAtom(0); }
  Atom operator[](size_t i) const {
    return inst_->MaterializeAtom(static_cast<AtomId>(i));
  }

 private:
  const Instance* inst_;
};

inline AtomRange Instance::atoms() const { return AtomRange(this); }

/// Alias emphasizing intent at call sites that require null-free instances.
using Database = Instance;

/// Returns a copy of `db` with every machine-generated constant (names
/// starting with '@') renamed to `prefix`0, `prefix`1, ... in first-
/// occurrence order. Used to display frozen witness databases.
Database PrettifiedCopy(const Database& db, const std::string& prefix = "c");

}  // namespace omqc

#endif  // OMQC_LOGIC_INSTANCE_H_
