// Instances and databases (Sec. 2 of the paper).
//
// An Instance is a finite set of atoms over constants and nulls, with
// per-predicate and per-(predicate,position,term) indexes that back the
// homomorphism search engine. A database is an instance whose atoms are
// facts (null-free); `IsDatabase()` checks this.
//
// Storage is columnar (DESIGN.md "Atom storage layout"): every atom is
// stored exactly once in an append-only arena — one contiguous Term pool
// plus a 12-byte {Predicate, offset, arity} record per atom — and every
// side structure (dedup table, per-predicate and per-argument indexes,
// insertion order) is a postings list of 32-bit atom ids. Hot paths read
// atoms as AtomView spans via `view(id)` / `IdsWith*`; the materializing
// accessors (`atoms()`, `AtomsWith*`) copy and are for cold paths only.

#ifndef OMQC_LOGIC_INSTANCE_H_
#define OMQC_LOGIC_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/atom.h"

namespace omqc {

/// Index of an atom within one Instance's arena: dense, assigned in
/// insertion order, stable for the lifetime of the instance.
using AtomId = uint32_t;

class AtomRange;

/// A finite set of atoms with lookup indexes. Append-only plus bulk ops;
/// atom identity is set semantics (duplicates are ignored).
class Instance {
 public:
  Instance() = default;
  explicit Instance(const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) Add(a);
  }

  /// Outcome of an insert: the atom's id (fresh or pre-existing) and
  /// whether the insert actually extended the instance.
  struct AddOutcome {
    AtomId id;
    bool inserted;
  };

  /// Inserts the atom `view` refers to (copying its terms into the arena);
  /// no-op if an equal atom is already present. `view` must not point into
  /// this instance's own arena unless the atom is already present.
  AddOutcome AddView(AtomView view);

  /// Inserts `atom`; returns true iff it was not already present.
  bool Add(const Atom& atom) { return AddView(ViewOf(atom)).inserted; }
  /// Inserts all atoms of `other`.
  void AddAll(const Instance& other);

  bool Contains(AtomView view) const { return FindId(view).has_value(); }
  bool Contains(const Atom& atom) const { return Contains(ViewOf(atom)); }

  /// The id of the equal atom, if present. O(1); never materializes.
  std::optional<AtomId> FindId(AtomView view) const;
  std::optional<AtomId> FindId(const Atom& atom) const {
    return FindId(ViewOf(atom));
  }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// The atom with the given id as a zero-copy span into the arena.
  /// Invalidated by the next Add (the term pool may reallocate); the id
  /// itself stays valid forever.
  AtomView view(AtomId id) const {
    const AtomRecord& r = records_[id];
    return AtomView(r.predicate, term_pool_.data() + r.offset, r.arity);
  }

  /// A materialized (owning) copy of the atom with the given id.
  Atom MaterializeAtom(AtomId id) const { return view(id).Materialize(); }

  /// All atoms in insertion order, materialized lazily per element.
  /// Iteration compiles with `for (const Atom& a : inst.atoms())`; hot
  /// loops should iterate ids and call view() instead.
  AtomRange atoms() const;

  /// Ids of atoms with the given predicate, in insertion order (empty if
  /// none). The homomorphism engine's fallback candidate list.
  const std::vector<AtomId>& IdsWith(Predicate p) const;

  /// Ids of atoms with predicate `p` whose argument at `position` equals
  /// `t`. Backed by an index; O(result size).
  const std::vector<AtomId>& IdsWithArg(Predicate p, int position,
                                        const Term& t) const;

  /// Materializing counterparts of IdsWith / IdsWithArg (cold paths).
  std::vector<Atom> AtomsWith(Predicate p) const;
  std::vector<Atom> AtomsWithArg(Predicate p, int position,
                                 const Term& t) const;

  /// The active domain dom(I): all terms occurring in the instance.
  std::vector<Term> ActiveDomain() const;
  /// The constants of the active domain.
  std::vector<Term> ActiveDomainConstants() const;

  /// The set of predicates occurring in the instance.
  Schema InducedSchema() const;

  /// True iff every atom is a fact (no nulls, no variables).
  bool IsDatabase() const;

  /// The subinstance induced by the given set of terms: all atoms whose
  /// arguments are all contained in `terms`.
  Instance InducedBy(const std::set<Term>& terms) const;

  /// Maximal connected components w.r.t. shared terms (Sec. 7.1).
  /// 0-ary atoms are excluded, matching the paper's footnote 5.
  std::vector<Instance> ConnectedComponents() const;

  /// Bytes held by the arena and the id-based indexes: term pool, atom
  /// records, dedup slots and posting entries. O(1), exact for the data
  /// proper (container bookkeeping overhead excluded); this is what the
  /// chase charges against the governor's memory budget.
  size_t MemoryBytes() const {
    return term_pool_.size() * sizeof(Term) +
           records_.size() * sizeof(AtomRecord) +
           slots_.size() * sizeof(AtomId) +
           // One by_predicate_ entry per atom, one by_arg_ entry per term.
           (records_.size() + term_pool_.size()) * sizeof(AtomId);
  }

  /// Multi-line listing "R(a,b). S(b)." sorted for stable output.
  std::string ToString() const;

  bool operator==(const Instance& other) const {
    if (size() != other.size()) return false;
    for (AtomId id = 0; id < records_.size(); ++id) {
      if (!other.Contains(view(id))) return false;
    }
    return true;
  }

 private:
  /// Per-atom arena record: which predicate, where its terms live in the
  /// pool, how many. 12 bytes; the terms themselves are contiguous in
  /// term_pool_ so a scan over one atom's arguments never pointer-chases.
  struct AtomRecord {
    Predicate predicate;
    uint32_t offset;
    uint8_t arity;
  };

  struct ArgKey {
    int32_t pred_id;
    int position;
    Term term;
    bool operator==(const ArgKey& o) const {
      return pred_id == o.pred_id && position == o.position && term == o.term;
    }
  };
  struct ArgKeyHash {
    size_t operator()(const ArgKey& k) const {
      size_t seed = std::hash<int32_t>{}(k.pred_id);
      HashCombine(seed, static_cast<size_t>(k.position));
      HashCombine(seed, TermHash{}(k.term));
      return seed;
    }
  };

  static constexpr AtomId kEmptySlot = 0xFFFFFFFFu;

  /// Rebuilds the open-addressing dedup table with `new_size` slots
  /// (power of two).
  void Rehash(size_t new_size);

  /// Arena: one flat term pool + one record per atom, in insertion order.
  std::vector<Term> term_pool_;
  std::vector<AtomRecord> records_;
  /// Dedup table: open addressing (linear probing, load factor <= 1/2)
  /// over atom ids, hashed/compared against the arena in place — Add and
  /// Contains never materialize a temporary Atom.
  std::vector<AtomId> slots_;
  /// Id postings, in insertion order.
  std::unordered_map<int32_t, std::vector<AtomId>> by_predicate_;
  std::unordered_map<ArgKey, std::vector<AtomId>, ArgKeyHash> by_arg_;
};

/// Lazily materializing view over an Instance's atoms in insertion order.
/// Dereferencing yields an owning Atom by value; `for (const Atom& a : r)`
/// binds each to a loop-scoped temporary.
class AtomRange {
 public:
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Atom;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Atom;

    const_iterator(const Instance* inst, AtomId id) : inst_(inst), id_(id) {}
    Atom operator*() const { return inst_->MaterializeAtom(id_); }
    const_iterator& operator++() {
      ++id_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++id_;
      return out;
    }
    bool operator==(const const_iterator& o) const { return id_ == o.id_; }
    bool operator!=(const const_iterator& o) const { return id_ != o.id_; }

   private:
    const Instance* inst_;
    AtomId id_;
  };

  explicit AtomRange(const Instance* inst) : inst_(inst) {}

  const_iterator begin() const { return const_iterator(inst_, 0); }
  const_iterator end() const {
    return const_iterator(inst_, static_cast<AtomId>(inst_->size()));
  }
  size_t size() const { return inst_->size(); }
  bool empty() const { return inst_->empty(); }
  Atom front() const { return inst_->MaterializeAtom(0); }
  Atom operator[](size_t i) const {
    return inst_->MaterializeAtom(static_cast<AtomId>(i));
  }

 private:
  const Instance* inst_;
};

inline AtomRange Instance::atoms() const { return AtomRange(this); }

/// Alias emphasizing intent at call sites that require null-free instances.
using Database = Instance;

/// Returns a copy of `db` with every machine-generated constant (names
/// starting with '@') renamed to `prefix`0, `prefix`1, ... in first-
/// occurrence order. Used to display frozen witness databases.
Database PrettifiedCopy(const Database& db, const std::string& prefix = "c");

}  // namespace omqc

#endif  // OMQC_LOGIC_INSTANCE_H_
