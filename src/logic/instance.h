// Instances and databases (Sec. 2 of the paper).
//
// An Instance is a finite set of atoms over constants and nulls, with
// per-predicate and per-(predicate,position,term) indexes that back the
// homomorphism search engine. A database is an instance whose atoms are
// facts (null-free); `IsDatabase()` checks this.

#ifndef OMQC_LOGIC_INSTANCE_H_
#define OMQC_LOGIC_INSTANCE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logic/atom.h"

namespace omqc {

/// A finite set of atoms with lookup indexes. Append-only plus bulk ops;
/// atom identity is set semantics (duplicates are ignored).
class Instance {
 public:
  Instance() = default;
  explicit Instance(const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) Add(a);
  }

  /// Inserts `atom`; returns true iff it was not already present.
  bool Add(const Atom& atom);
  /// Inserts all atoms of `other`.
  void AddAll(const Instance& other);

  bool Contains(const Atom& atom) const { return atom_set_.count(atom) > 0; }
  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// All atoms in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Atoms with the given predicate (empty vector if none).
  const std::vector<Atom>& AtomsWith(Predicate p) const;

  /// Atoms with predicate `p` whose argument at `position` equals `t`.
  /// Backed by an index; O(result size).
  const std::vector<Atom>& AtomsWithArg(Predicate p, int position,
                                        const Term& t) const;

  /// The active domain dom(I): all terms occurring in the instance.
  std::vector<Term> ActiveDomain() const;
  /// The constants of the active domain.
  std::vector<Term> ActiveDomainConstants() const;

  /// The set of predicates occurring in the instance.
  Schema InducedSchema() const;

  /// True iff every atom is a fact (no nulls, no variables).
  bool IsDatabase() const;

  /// The subinstance induced by the given set of terms: all atoms whose
  /// arguments are all contained in `terms`.
  Instance InducedBy(const std::set<Term>& terms) const;

  /// Maximal connected components w.r.t. shared terms (Sec. 7.1).
  /// 0-ary atoms are excluded, matching the paper's footnote 5.
  std::vector<Instance> ConnectedComponents() const;

  /// Multi-line listing "R(a,b). S(b)." sorted for stable output.
  std::string ToString() const;

  bool operator==(const Instance& other) const {
    if (size() != other.size()) return false;
    for (const Atom& a : atoms_) {
      if (!other.Contains(a)) return false;
    }
    return true;
  }

 private:
  struct ArgKey {
    int32_t pred_id;
    int position;
    Term term;
    bool operator==(const ArgKey& o) const {
      return pred_id == o.pred_id && position == o.position && term == o.term;
    }
  };
  struct ArgKeyHash {
    size_t operator()(const ArgKey& k) const {
      size_t seed = std::hash<int32_t>{}(k.pred_id);
      HashCombine(seed, static_cast<size_t>(k.position));
      HashCombine(seed, TermHash{}(k.term));
      return seed;
    }
  };

  std::vector<Atom> atoms_;
  std::unordered_set<Atom, AtomHash> atom_set_;
  std::unordered_map<int32_t, std::vector<Atom>> by_predicate_;
  std::unordered_map<ArgKey, std::vector<Atom>, ArgKeyHash> by_arg_;
};

/// Alias emphasizing intent at call sites that require null-free instances.
using Database = Instance;

/// Returns a copy of `db` with every machine-generated constant (names
/// starting with '@') renamed to `prefix`0, `prefix`1, ... in first-
/// occurrence order. Used to display frozen witness databases.
Database PrettifiedCopy(const Database& db, const std::string& prefix = "c");

}  // namespace omqc

#endif  // OMQC_LOGIC_INSTANCE_H_
