#include "logic/cq.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "base/string_util.h"

namespace omqc {

std::vector<Term> ConjunctiveQuery::Variables() const {
  std::vector<Term> out;
  auto push = [&out](const Term& t) {
    if (t.IsVariable() && std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    }
  };
  for (const Term& t : answer_vars) push(t);
  for (const Atom& a : body) {
    for (const Term& t : a.args) push(t);
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::ExistentialVariables() const {
  std::set<Term> free(answer_vars.begin(), answer_vars.end());
  std::vector<Term> out;
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.IsVariable() && free.count(t) == 0 &&
          std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
  return out;
}

std::set<Term> ConjunctiveQuery::SharedVariables() const {
  std::set<Term> shared(answer_vars.begin(), answer_vars.end());
  std::map<Term, int> occurrences;
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) ++occurrences[t];
    }
  }
  for (const auto& [t, count] : occurrences) {
    if (count > 1) shared.insert(t);
  }
  // Only variables count as shared; drop constants from the answer tuple.
  for (auto it = shared.begin(); it != shared.end();) {
    it = it->IsVariable() ? std::next(it) : shared.erase(it);
  }
  return shared;
}

std::set<Term> ConjunctiveQuery::VariablesInMultipleAtoms() const {
  std::map<Term, int> atom_count;
  for (const Atom& a : body) {
    std::set<Term> vars;
    for (const Term& t : a.args) {
      if (t.IsVariable()) vars.insert(t);
    }
    for (const Term& t : vars) ++atom_count[t];
  }
  std::set<Term> out;
  for (const auto& [t, count] : atom_count) {
    if (count >= 2) out.insert(t);
  }
  return out;
}

std::set<Term> ConjunctiveQuery::AllTerms() const {
  std::set<Term> out;
  for (const Atom& a : body) {
    for (const Term& t : a.args) out.insert(t);
  }
  for (const Term& t : answer_vars) out.insert(t);
  return out;
}

std::set<Term> ConjunctiveQuery::Constants() const {
  std::set<Term> out;
  for (const Term& t : AllTerms()) {
    if (t.IsConstant()) out.insert(t);
  }
  return out;
}

ConjunctiveQuery ConjunctiveQuery::Substituted(const Substitution& s) const {
  return ConjunctiveQuery(s.Apply(answer_vars), s.Apply(body));
}

ConjunctiveQuery ConjunctiveQuery::RenamedApart(int index) const {
  Substitution rename;
  for (const Term& v : Variables()) {
    rename.Bind(v, Term::Variable(StrCat(v.ToString(), "#", index)));
  }
  return Substituted(rename);
}

std::vector<ConjunctiveQuery> ConjunctiveQuery::Components() const {
  // Union-find over terms occurring in non-0-ary atoms.
  std::map<Term, Term> parent;
  std::function<Term(Term)> find = [&](Term t) {
    while (parent.at(t) != t) {
      parent[t] = parent.at(parent.at(t));
      t = parent.at(t);
    }
    return t;
  };
  for (const Atom& a : body) {
    for (const Term& t : a.args) parent.emplace(t, t);
  }
  for (const Atom& a : body) {
    if (a.args.empty()) continue;
    Term first = find(a.args.front());
    for (const Term& t : a.args) parent[find(t)] = first;
  }
  std::map<Term, std::vector<Atom>> groups;
  for (const Atom& a : body) {
    if (a.args.empty()) continue;
    groups[find(a.args.front())].push_back(a);
  }
  std::vector<ConjunctiveQuery> out;
  for (auto& [root, atoms] : groups) {
    std::set<Term> terms;
    for (const Atom& a : atoms) {
      for (const Term& t : a.args) terms.insert(t);
    }
    std::vector<Term> answers;
    for (const Term& v : answer_vars) {
      if (terms.count(v) > 0 || v.IsConstant()) answers.push_back(v);
    }
    out.emplace_back(std::move(answers), std::move(atoms));
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string head = StrCat(
      "q(",
      JoinMapped(answer_vars, ",", [](const Term& t) { return t.ToString(); }),
      ")");
  if (body.empty()) return head + " :- true";
  return StrCat(head, " :- ",
                JoinMapped(body, ", ",
                           [](const Atom& a) { return a.ToString(); }));
}

FrozenQuery Freeze(const ConjunctiveQuery& q, const std::string& tag) {
  // Atomic: worker threads of the parallel containment engine freeze
  // candidate disjuncts concurrently.
  static std::atomic<int64_t> freeze_counter{0};
  int64_t stamp = freeze_counter.fetch_add(1, std::memory_order_relaxed);
  FrozenQuery out;
  for (const Term& v : q.Variables()) {
    out.freezing.Bind(
        v, Term::Constant(StrCat("@f", stamp, tag, "_", v.ToString())));
  }
  for (const Atom& a : q.body) out.database.Add(out.freezing.Apply(a));
  out.answer_tuple = out.freezing.Apply(q.answer_vars);
  return out;
}

size_t UnionOfCQs::MaxDisjunctSize() const {
  size_t max_size = 0;
  for (const ConjunctiveQuery& q : disjuncts) {
    max_size = std::max(max_size, q.size());
  }
  return max_size;
}

std::string UnionOfCQs::ToString() const {
  return JoinMapped(disjuncts, "\n", [](const ConjunctiveQuery& q) {
    return q.ToString();
  });
}

Status ValidateCQ(const ConjunctiveQuery& q) {
  std::set<Term> body_vars;
  for (const Atom& a : q.body) {
    if (static_cast<int>(a.args.size()) != a.predicate.arity()) {
      return Status::InvalidArgument(
          StrCat("atom ", a.ToString(), " does not match arity of ",
                 a.predicate.ToString()));
    }
    for (const Term& t : a.args) {
      if (t.IsNull()) {
        return Status::InvalidArgument(
            StrCat("query atom ", a.ToString(), " contains a null"));
      }
      if (t.IsVariable()) body_vars.insert(t);
    }
  }
  for (const Term& v : q.answer_vars) {
    if (v.IsVariable() && body_vars.count(v) == 0) {
      return Status::InvalidArgument(
          StrCat("answer variable ", v.ToString(), " not bound in body"));
    }
  }
  return Status::OK();
}

namespace {

/// Backtracking search for a variable bijection turning `a` into `b`.
bool IsoSearch(const std::vector<Atom>& body_a, size_t index,
               const std::vector<Atom>& body_b,
               std::unordered_map<Term, Term, TermHash>& fwd,
               std::unordered_map<Term, Term, TermHash>& bwd) {
  if (index == body_a.size()) return true;
  const Atom& atom = body_a[index];
  for (const Atom& candidate : body_b) {
    if (candidate.predicate != atom.predicate) continue;
    // Try to extend the bijection so that atom maps onto candidate.
    std::vector<std::pair<Term, Term>> added;
    bool feasible = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& from = atom.args[i];
      const Term& to = candidate.args[i];
      if (from.IsConstant() || to.IsConstant()) {
        if (from != to) {
          feasible = false;
          break;
        }
        continue;
      }
      auto fit = fwd.find(from);
      auto bit = bwd.find(to);
      if (fit != fwd.end() || bit != bwd.end()) {
        if (fit == fwd.end() || bit == bwd.end() || fit->second != to ||
            bit->second != from) {
          feasible = false;
          break;
        }
        continue;
      }
      fwd.emplace(from, to);
      bwd.emplace(to, from);
      added.emplace_back(from, to);
    }
    if (feasible && IsoSearch(body_a, index + 1, body_b, fwd, bwd)) {
      return true;
    }
    for (const auto& [from, to] : added) {
      fwd.erase(from);
      bwd.erase(to);
    }
  }
  return false;
}

std::vector<Atom> DedupedBody(const std::vector<Atom>& body) {
  std::vector<Atom> out;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : body) {
    if (seen.insert(a).second) out.push_back(a);
  }
  return out;
}

}  // namespace

bool IsomorphicCQs(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  if (a.answer_vars.size() != b.answer_vars.size()) return false;
  std::vector<Atom> body_a = DedupedBody(a.body);
  std::vector<Atom> body_b = DedupedBody(b.body);
  if (body_a.size() != body_b.size()) return false;

  std::unordered_map<Term, Term, TermHash> fwd, bwd;
  // Pin the answer tuple correspondence first.
  for (size_t i = 0; i < a.answer_vars.size(); ++i) {
    const Term& from = a.answer_vars[i];
    const Term& to = b.answer_vars[i];
    if (from.IsConstant() || to.IsConstant()) {
      if (from != to) return false;
      continue;
    }
    auto fit = fwd.find(from);
    auto bit = bwd.find(to);
    if (fit != fwd.end() || bit != bwd.end()) {
      if (fit == fwd.end() || bit == bwd.end() || fit->second != to ||
          bit->second != from) {
        return false;
      }
      continue;
    }
    fwd.emplace(from, to);
    bwd.emplace(to, from);
  }
  if (!IsoSearch(body_a, 0, body_b, fwd, bwd)) return false;
  // fwd is injective on variables and |body_a| == |body_b|, so the image of
  // body_a is exactly body_b; also require variable counts to match so the
  // renaming is a bijection on all variables.
  return a.Variables().size() == b.Variables().size();
}

}  // namespace omqc
