// Predicates, atoms and schemas (Sec. 2 of the paper).

#ifndef OMQC_LOGIC_ATOM_H_
#define OMQC_LOGIC_ATOM_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "base/hash_util.h"
#include "logic/term.h"

namespace omqc {

/// An interned relation symbol R/n. 8 bytes, O(1) compare/hash.
class Predicate {
 public:
  Predicate() : id_(-1) {}

  /// Interns (or looks up) the predicate `name` with arity `arity`.
  /// The same name may be interned at several arities; they are distinct
  /// predicates (as in standard relational vocabularies).
  static Predicate Get(const std::string& name, int arity);

  int32_t id() const { return id_; }
  const std::string& name() const;
  int arity() const;

  /// "name/arity".
  std::string ToString() const;

  bool valid() const { return id_ >= 0; }
  bool operator==(const Predicate& other) const { return id_ == other.id_; }
  bool operator!=(const Predicate& other) const { return id_ != other.id_; }
  bool operator<(const Predicate& other) const { return id_ < other.id_; }

 private:
  explicit Predicate(int32_t id) : id_(id) {}
  int32_t id_;
};

/// An atom R(t1,...,tn). Terms may be constants, nulls or variables.
struct Atom {
  Predicate predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(Predicate p, std::vector<Term> a) : predicate(p), args(std::move(a)) {}

  /// Convenience: R(name, args) with arity deduced from args.
  static Atom Make(const std::string& name, std::vector<Term> args);

  /// True iff every argument is a constant (i.e. this atom is a fact).
  bool IsFact() const;
  /// True iff no argument is a null.
  bool NullFree() const;

  /// All variables occurring in the atom, in order of first occurrence.
  std::vector<Term> Variables() const;

  /// "R(t1,...,tn)".
  std::string ToString() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return args < other.args;
  }
};

/// Hash of an atom given as predicate + argument span. The single source of
/// atom hashing: AtomHash and the Instance arena's dedup table both call
/// this, so a materialized Atom and its in-arena view always agree.
inline size_t HashAtomTerms(Predicate p, const Term* args, size_t arity) {
  size_t seed = std::hash<int32_t>{}(p.id());
  for (size_t i = 0; i < arity; ++i) HashCombine(seed, TermHash{}(args[i]));
  return seed;
}

struct AtomHash {
  size_t operator()(const Atom& a) const {
    return HashAtomTerms(a.predicate, a.args.data(), a.args.size());
  }
};

/// A non-owning view of an atom: predicate plus a span of terms, 16 bytes.
/// This is how hot paths (homomorphism candidate scans, chase triggers)
/// read atoms out of an Instance's arena without materializing a
/// heap-allocated Atom. A view is transient: it is invalidated by any
/// mutation of the storage the span points into (for Instance views, by
/// the next Add — exactly like a vector iterator).
class AtomView {
 public:
  AtomView(Predicate predicate, const Term* args, size_t arity)
      : predicate_(predicate), args_(args),
        arity_(static_cast<uint32_t>(arity)) {}

  Predicate predicate() const { return predicate_; }
  size_t arity() const { return arity_; }
  const Term& arg(size_t i) const { return args_[i]; }
  const Term* begin() const { return args_; }
  const Term* end() const { return args_ + arity_; }

  /// Deep copy into an owning Atom (cold paths only).
  Atom Materialize() const {
    return Atom(predicate_, std::vector<Term>(begin(), end()));
  }

  size_t hash() const { return HashAtomTerms(predicate_, args_, arity_); }

  /// Structural equality (predicate and argument terms), not span identity.
  bool operator==(const AtomView& o) const {
    if (predicate_ != o.predicate_ || arity_ != o.arity_) return false;
    for (size_t i = 0; i < arity_; ++i) {
      if (args_[i] != o.args_[i]) return false;
    }
    return true;
  }
  bool operator!=(const AtomView& o) const { return !(*this == o); }

 private:
  Predicate predicate_;
  const Term* args_;
  uint32_t arity_;
};

/// A view of a materialized Atom (valid while `a` is alive and unmoved).
inline AtomView ViewOf(const Atom& a) {
  return AtomView(a.predicate, a.args.data(), a.args.size());
}

/// A schema: a finite set of predicates. Thin wrapper over std::set to give
/// schema-level operations names matching the paper (ar(S), membership...).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::set<Predicate> preds) : preds_(std::move(preds)) {}

  void Add(Predicate p) { preds_.insert(p); }
  bool Contains(Predicate p) const { return preds_.count(p) > 0; }
  size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  const std::set<Predicate>& predicates() const { return preds_; }

  /// ar(S): the maximum arity over all predicates (0 for the empty schema).
  int MaxArity() const;

  /// Set union with another schema.
  Schema Union(const Schema& other) const;

  std::string ToString() const;

 private:
  std::set<Predicate> preds_;
};

}  // namespace omqc

namespace std {
template <>
struct hash<omqc::Predicate> {
  size_t operator()(const omqc::Predicate& p) const {
    return std::hash<int32_t>{}(p.id());
  }
};
template <>
struct hash<omqc::Atom> {
  size_t operator()(const omqc::Atom& a) const {
    return omqc::AtomHash{}(a);
  }
};
}  // namespace std

#endif  // OMQC_LOGIC_ATOM_H_
