// Predicates, atoms and schemas (Sec. 2 of the paper).

#ifndef OMQC_LOGIC_ATOM_H_
#define OMQC_LOGIC_ATOM_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "base/hash_util.h"
#include "logic/term.h"

namespace omqc {

/// An interned relation symbol R/n. 8 bytes, O(1) compare/hash.
class Predicate {
 public:
  Predicate() : id_(-1) {}

  /// Interns (or looks up) the predicate `name` with arity `arity`.
  /// The same name may be interned at several arities; they are distinct
  /// predicates (as in standard relational vocabularies).
  static Predicate Get(const std::string& name, int arity);

  int32_t id() const { return id_; }
  const std::string& name() const;
  int arity() const;

  /// "name/arity".
  std::string ToString() const;

  bool valid() const { return id_ >= 0; }
  bool operator==(const Predicate& other) const { return id_ == other.id_; }
  bool operator!=(const Predicate& other) const { return id_ != other.id_; }
  bool operator<(const Predicate& other) const { return id_ < other.id_; }

 private:
  explicit Predicate(int32_t id) : id_(id) {}
  int32_t id_;
};

/// An atom R(t1,...,tn). Terms may be constants, nulls or variables.
struct Atom {
  Predicate predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(Predicate p, std::vector<Term> a) : predicate(p), args(std::move(a)) {}

  /// Convenience: R(name, args) with arity deduced from args.
  static Atom Make(const std::string& name, std::vector<Term> args);

  /// True iff every argument is a constant (i.e. this atom is a fact).
  bool IsFact() const;
  /// True iff no argument is a null.
  bool NullFree() const;

  /// All variables occurring in the atom, in order of first occurrence.
  std::vector<Term> Variables() const;

  /// "R(t1,...,tn)".
  std::string ToString() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return args < other.args;
  }
};

struct AtomHash {
  size_t operator()(const Atom& a) const {
    size_t seed = std::hash<int32_t>{}(a.predicate.id());
    for (const Term& t : a.args) HashCombine(seed, TermHash{}(t));
    return seed;
  }
};

/// A schema: a finite set of predicates. Thin wrapper over std::set to give
/// schema-level operations names matching the paper (ar(S), membership...).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::set<Predicate> preds) : preds_(std::move(preds)) {}

  void Add(Predicate p) { preds_.insert(p); }
  bool Contains(Predicate p) const { return preds_.count(p) > 0; }
  size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  const std::set<Predicate>& predicates() const { return preds_; }

  /// ar(S): the maximum arity over all predicates (0 for the empty schema).
  int MaxArity() const;

  /// Set union with another schema.
  Schema Union(const Schema& other) const;

  std::string ToString() const;

 private:
  std::set<Predicate> preds_;
};

}  // namespace omqc

namespace std {
template <>
struct hash<omqc::Predicate> {
  size_t operator()(const omqc::Predicate& p) const {
    return std::hash<int32_t>{}(p.id());
  }
};
template <>
struct hash<omqc::Atom> {
  size_t operator()(const omqc::Atom& a) const {
    return omqc::AtomHash{}(a);
  }
};
}  // namespace std

#endif  // OMQC_LOGIC_ATOM_H_
