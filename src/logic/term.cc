#include "logic/term.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "base/string_util.h"

namespace omqc {
namespace {

/// One interning table per term sort that carries a name. Synchronized so
/// worker threads of the parallel containment engine can intern terms
/// concurrently; `names` is a deque, whose element references stay stable
/// across growth, so `Name()` can hand out references without copying.
struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, int32_t> by_name;
  std::deque<std::string> names;

  int32_t Intern(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    int32_t id = static_cast<int32_t>(names.size());
    names.push_back(name);
    by_name.emplace(name, id);
    return id;
  }

  const std::string& Name(int32_t id) {
    std::lock_guard<std::mutex> lock(mu);
    return names[static_cast<size_t>(id)];
  }
};

Interner& ConstantInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

Interner& VariableInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

std::atomic<int32_t>& NullCounter() {
  static std::atomic<int32_t>* counter = new std::atomic<int32_t>(0);
  return *counter;
}

}  // namespace

Term Term::Constant(const std::string& name) {
  return Term(TermKind::kConstant, ConstantInterner().Intern(name));
}

Term Term::Variable(const std::string& name) {
  return Term(TermKind::kVariable, VariableInterner().Intern(name));
}

Term Term::FreshNull() {
  return Term(TermKind::kNull,
              NullCounter().fetch_add(1, std::memory_order_relaxed));
}

Term Term::NullWithId(int32_t id) { return Term(TermKind::kNull, id); }

void Term::ReserveNullIds(int32_t bound) {
  std::atomic<int32_t>& counter = NullCounter();
  int32_t current = counter.load(std::memory_order_relaxed);
  while (current < bound &&
         !counter.compare_exchange_weak(current, bound,
                                        std::memory_order_relaxed)) {
  }
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kConstant:
      if (id_ < 0) return "<invalid>";
      return ConstantInterner().Name(id_);
    case TermKind::kNull:
      return StrCat("_:n", id_);
    case TermKind::kVariable:
      return VariableInterner().Name(id_);
  }
  return "<invalid>";
}

}  // namespace omqc
