#include "logic/term.h"

#include <unordered_map>
#include <vector>

#include "base/string_util.h"

namespace omqc {
namespace {

/// One interning table per term sort that carries a name.
struct Interner {
  std::unordered_map<std::string, int32_t> by_name;
  std::vector<std::string> names;

  int32_t Intern(const std::string& name) {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    int32_t id = static_cast<int32_t>(names.size());
    names.push_back(name);
    by_name.emplace(name, id);
    return id;
  }
};

Interner& ConstantInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

Interner& VariableInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

int32_t& NullCounter() {
  static int32_t counter = 0;
  return counter;
}

}  // namespace

Term Term::Constant(const std::string& name) {
  return Term(TermKind::kConstant, ConstantInterner().Intern(name));
}

Term Term::Variable(const std::string& name) {
  return Term(TermKind::kVariable, VariableInterner().Intern(name));
}

Term Term::FreshNull() { return Term(TermKind::kNull, NullCounter()++); }

Term Term::NullWithId(int32_t id) { return Term(TermKind::kNull, id); }

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kConstant:
      if (id_ < 0) return "<invalid>";
      return ConstantInterner().names[static_cast<size_t>(id_)];
    case TermKind::kNull:
      return StrCat("_:n", id_);
    case TermKind::kVariable:
      return VariableInterner().names[static_cast<size_t>(id_)];
  }
  return "<invalid>";
}

}  // namespace omqc
