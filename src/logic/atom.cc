#include "logic/atom.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "base/string_util.h"

namespace omqc {
namespace {

struct PredicateInfo {
  std::string name;
  int arity;
};

/// Synchronized for the parallel containment engine (see base/thread_pool);
/// `infos` is a deque so references handed out by Info() survive growth.
struct PredicateInterner {
  std::mutex mu;
  std::unordered_map<std::string, int32_t> by_key;
  std::deque<PredicateInfo> infos;

  int32_t Intern(const std::string& name, int arity) {
    std::string key = StrCat(name, "/", arity);
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_key.find(key);
    if (it != by_key.end()) return it->second;
    int32_t id = static_cast<int32_t>(infos.size());
    infos.push_back({name, arity});
    by_key.emplace(std::move(key), id);
    return id;
  }

  const PredicateInfo& Info(int32_t id) {
    std::lock_guard<std::mutex> lock(mu);
    return infos[static_cast<size_t>(id)];
  }
};

PredicateInterner& Interner() {
  static PredicateInterner* interner = new PredicateInterner();
  return *interner;
}

}  // namespace

Predicate Predicate::Get(const std::string& name, int arity) {
  return Predicate(Interner().Intern(name, arity));
}

const std::string& Predicate::name() const {
  return Interner().Info(id_).name;
}

int Predicate::arity() const { return Interner().Info(id_).arity; }

std::string Predicate::ToString() const {
  if (!valid()) return "<invalid>/0";
  return StrCat(name(), "/", arity());
}

Atom Atom::Make(const std::string& name, std::vector<Term> args) {
  Predicate p = Predicate::Get(name, static_cast<int>(args.size()));
  return Atom(p, std::move(args));
}

bool Atom::IsFact() const {
  for (const Term& t : args) {
    if (!t.IsConstant()) return false;
  }
  return true;
}

bool Atom::NullFree() const {
  for (const Term& t : args) {
    if (t.IsNull()) return false;
  }
  return true;
}

std::vector<Term> Atom::Variables() const {
  std::vector<Term> out;
  for (const Term& t : args) {
    if (t.IsVariable() &&
        std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    }
  }
  return out;
}

std::string Atom::ToString() const {
  std::string out = predicate.valid() ? predicate.name() : "<invalid>";
  out += "(";
  out += JoinMapped(args, ",", [](const Term& t) { return t.ToString(); });
  out += ")";
  return out;
}

int Schema::MaxArity() const {
  int max_arity = 0;
  for (const Predicate& p : preds_) {
    if (p.arity() > max_arity) max_arity = p.arity();
  }
  return max_arity;
}

Schema Schema::Union(const Schema& other) const {
  Schema out = *this;
  for (const Predicate& p : other.preds_) out.Add(p);
  return out;
}

std::string Schema::ToString() const {
  return StrCat(
      "{",
      JoinMapped(preds_, ", ", [](const Predicate& p) { return p.ToString(); }),
      "}");
}

}  // namespace omqc
