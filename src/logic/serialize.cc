#include "logic/serialize.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "logic/instance.h"

namespace omqc {
namespace {

/// Guard against hostile length prefixes: a count field may not promise
/// more elements than one byte each of remaining input.
bool PlausibleCount(uint64_t count, const ByteReader& in) {
  return count <= in.remaining();
}

}  // namespace

void SerializeTerm(const Term& t, ByteWriter& out) {
  out.U8(static_cast<uint8_t>(t.kind()));
  if (t.IsNull()) {
    out.I32(t.id());
  } else {
    out.Str(t.ToString());
  }
}

Result<Term> DeserializeTerm(ByteReader& in) {
  uint8_t kind = in.U8();
  if (!in.ok()) return Status::InvalidArgument("truncated term");
  switch (static_cast<TermKind>(kind)) {
    case TermKind::kConstant: {
      std::string name = in.Str();
      if (!in.ok()) return Status::InvalidArgument("truncated constant name");
      return Term::Constant(name);
    }
    case TermKind::kVariable: {
      std::string name = in.Str();
      if (!in.ok()) return Status::InvalidArgument("truncated variable name");
      return Term::Variable(name);
    }
    case TermKind::kNull: {
      int32_t id = in.I32();
      if (!in.ok() || id < 0) return Status::InvalidArgument("bad null id");
      return Term::NullWithId(id);
    }
  }
  return Status::InvalidArgument("unknown term kind");
}

void SerializePredicate(Predicate p, ByteWriter& out) {
  out.Str(p.name());
  out.U32(static_cast<uint32_t>(p.arity()));
}

Result<Predicate> DeserializePredicate(ByteReader& in) {
  std::string name = in.Str();
  uint32_t arity = in.U32();
  if (!in.ok() || arity > 255) return Status::InvalidArgument("bad predicate");
  return Predicate::Get(name, static_cast<int>(arity));
}

void SerializeAtom(const Atom& a, ByteWriter& out) {
  SerializePredicate(a.predicate, out);
  out.U32(static_cast<uint32_t>(a.args.size()));
  for (const Term& t : a.args) SerializeTerm(t, out);
}

Result<Atom> DeserializeAtom(ByteReader& in) {
  OMQC_ASSIGN_OR_RETURN(Predicate p, DeserializePredicate(in));
  uint32_t n = in.U32();
  if (!in.ok() || !PlausibleCount(n, in)) {
    return Status::InvalidArgument("bad atom arg count");
  }
  std::vector<Term> args;
  args.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OMQC_ASSIGN_OR_RETURN(Term t, DeserializeTerm(in));
    args.push_back(t);
  }
  return Atom(p, std::move(args));
}

void SerializeCQ(const ConjunctiveQuery& q, ByteWriter& out) {
  out.U32(static_cast<uint32_t>(q.answer_vars.size()));
  for (const Term& t : q.answer_vars) SerializeTerm(t, out);
  out.U32(static_cast<uint32_t>(q.body.size()));
  for (const Atom& a : q.body) SerializeAtom(a, out);
}

Result<ConjunctiveQuery> DeserializeCQ(ByteReader& in) {
  ConjunctiveQuery q;
  uint32_t n_answers = in.U32();
  if (!in.ok() || !PlausibleCount(n_answers, in)) {
    return Status::InvalidArgument("bad answer tuple count");
  }
  q.answer_vars.reserve(n_answers);
  for (uint32_t i = 0; i < n_answers; ++i) {
    OMQC_ASSIGN_OR_RETURN(Term t, DeserializeTerm(in));
    q.answer_vars.push_back(t);
  }
  uint32_t n_atoms = in.U32();
  if (!in.ok() || !PlausibleCount(n_atoms, in)) {
    return Status::InvalidArgument("bad body atom count");
  }
  q.body.reserve(n_atoms);
  for (uint32_t i = 0; i < n_atoms; ++i) {
    OMQC_ASSIGN_OR_RETURN(Atom a, DeserializeAtom(in));
    q.body.push_back(std::move(a));
  }
  return q;
}

void SerializeUCQ(const UnionOfCQs& ucq, ByteWriter& out) {
  out.U32(static_cast<uint32_t>(ucq.disjuncts.size()));
  for (const ConjunctiveQuery& d : ucq.disjuncts) SerializeCQ(d, out);
}

Result<UnionOfCQs> DeserializeUCQ(ByteReader& in) {
  uint32_t n = in.U32();
  if (!in.ok() || !PlausibleCount(n, in)) {
    return Status::InvalidArgument("bad disjunct count");
  }
  UnionOfCQs ucq;
  ucq.disjuncts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OMQC_ASSIGN_OR_RETURN(ConjunctiveQuery q, DeserializeCQ(in));
    ucq.disjuncts.push_back(std::move(q));
  }
  return ucq;
}

// Instance arena snapshot. Layout:
//   u32 n_predicates, per predicate: name + arity
//   u32 n_terms, per term: the inline term encoding (names / null ids)
//   u32 n_atoms, per atom: u32 predicate index + u32 term index per arg
// Atoms are written in insertion order; Restore re-Adds them in that
// order, which reproduces identical AtomIds, dedup state and postings.
void Instance::Snapshot(ByteWriter& out) const {
  std::vector<Predicate> preds;
  std::unordered_map<int32_t, uint32_t> pred_index;
  std::vector<Term> terms;
  std::unordered_map<Term, uint32_t, TermHash> term_index;
  for (AtomId id = 0; id < records_.size(); ++id) {
    AtomView v = view(id);
    if (pred_index.emplace(v.predicate().id(),
                           static_cast<uint32_t>(preds.size())).second) {
      preds.push_back(v.predicate());
    }
    for (const Term& t : v) {
      if (term_index.emplace(t, static_cast<uint32_t>(terms.size())).second) {
        terms.push_back(t);
      }
    }
  }
  out.U32(static_cast<uint32_t>(preds.size()));
  for (Predicate p : preds) SerializePredicate(p, out);
  out.U32(static_cast<uint32_t>(terms.size()));
  for (const Term& t : terms) SerializeTerm(t, out);
  out.U32(static_cast<uint32_t>(records_.size()));
  for (AtomId id = 0; id < records_.size(); ++id) {
    AtomView v = view(id);
    out.U32(pred_index.at(v.predicate().id()));
    // Per-atom arity: hand-built atoms may disagree with the predicate's
    // declared arity, and the arena stores them faithfully.
    out.U8(static_cast<uint8_t>(v.arity()));
    for (const Term& t : v) out.U32(term_index.at(t));
  }
}

Result<Instance> Instance::Restore(ByteReader& in) {
  uint32_t n_preds = in.U32();
  if (!in.ok() || n_preds > in.remaining()) {
    return Status::InvalidArgument("bad predicate dictionary");
  }
  std::vector<Predicate> preds;
  preds.reserve(n_preds);
  for (uint32_t i = 0; i < n_preds; ++i) {
    OMQC_ASSIGN_OR_RETURN(Predicate p, DeserializePredicate(in));
    preds.push_back(p);
  }
  uint32_t n_terms = in.U32();
  if (!in.ok() || n_terms > in.remaining()) {
    return Status::InvalidArgument("bad term dictionary");
  }
  std::vector<Term> terms;
  terms.reserve(n_terms);
  int32_t max_null_id = -1;
  for (uint32_t i = 0; i < n_terms; ++i) {
    OMQC_ASSIGN_OR_RETURN(Term t, DeserializeTerm(in));
    if (t.IsNull()) max_null_id = std::max(max_null_id, t.id());
    terms.push_back(t);
  }
  uint32_t n_atoms = in.U32();
  if (!in.ok() || n_atoms > in.remaining()) {
    return Status::InvalidArgument("bad atom count");
  }
  Instance instance;
  std::vector<Term> args;
  for (uint32_t i = 0; i < n_atoms; ++i) {
    uint32_t pi = in.U32();
    uint8_t arity = in.U8();
    if (!in.ok() || pi >= preds.size()) {
      return Status::InvalidArgument("bad predicate index");
    }
    Predicate p = preds[pi];
    args.clear();
    for (int j = 0; j < static_cast<int>(arity); ++j) {
      uint32_t ti = in.U32();
      if (!in.ok() || ti >= terms.size()) {
        return Status::InvalidArgument("bad term index");
      }
      args.push_back(terms[ti]);
    }
    instance.AddView(AtomView(p, args.data(), args.size()));
  }
  if (max_null_id >= 0) Term::ReserveNullIds(max_null_id + 1);
  return instance;
}

}  // namespace omqc
