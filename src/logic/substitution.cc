#include "logic/substitution.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {

Term Substitution::ApplyTransitively(const Term& t) const {
  Term current = t;
  // Bounded walk to guard against accidental cycles in ill-formed inputs.
  for (size_t steps = 0; steps <= map_.size(); ++steps) {
    auto it = map_.find(current);
    if (it == map_.end() || it->second == current) return current;
    current = it->second;
  }
  return current;
}

Atom Substitution::Apply(const Atom& atom) const {
  Atom out = atom;
  for (Term& t : out.args) t = Apply(t);
  return out;
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(a));
  return out;
}

std::vector<Term> Substitution::Apply(const std::vector<Term>& terms) const {
  std::vector<Term> out;
  out.reserve(terms.size());
  for (const Term& t : terms) out.push_back(Apply(t));
  return out;
}

Atom Substitution::ApplyTransitively(const Atom& atom) const {
  Atom out = atom;
  for (Term& t : out.args) t = ApplyTransitively(t);
  return out;
}

std::vector<Atom> Substitution::ApplyTransitively(
    const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(ApplyTransitively(a));
  return out;
}

std::vector<Term> Substitution::ApplyTransitively(
    const std::vector<Term>& terms) const {
  std::vector<Term> out;
  out.reserve(terms.size());
  for (const Term& t : terms) out.push_back(ApplyTransitively(t));
  return out;
}

std::string Substitution::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(map_.size());
  for (const auto& [from, to] : map_) {
    parts.push_back(StrCat(from.ToString(), "->", to.ToString()));
  }
  std::sort(parts.begin(), parts.end());
  return StrCat("{", JoinStrings(parts, ", "), "}");
}

}  // namespace omqc
