// Binary serialization of the logic layer's value types — terms, atoms,
// CQs, UCQs and Instance arenas — for the persistent artifact store
// (src/cache/persist.h).
//
// Encoding invariants:
//   * Constants, variables and predicates are written by *name*, never by
//     interned id, so payloads are stable across processes and interning
//     orders and deserialization re-interns under the reader's tables.
//   * Nulls are written by id (they have no name); Instance::Restore
//     reserves the restored range so later FreshNull calls cannot alias.
//   * Deserializers are total over arbitrary bytes: malformed input
//     yields an error Status (via ByteReader's latched failure state),
//     never a crash or an out-of-bounds read.

#ifndef OMQC_LOGIC_SERIALIZE_H_
#define OMQC_LOGIC_SERIALIZE_H_

#include "base/binary_io.h"
#include "base/status.h"
#include "logic/cq.h"

namespace omqc {

void SerializeTerm(const Term& t, ByteWriter& out);
Result<Term> DeserializeTerm(ByteReader& in);

void SerializePredicate(Predicate p, ByteWriter& out);
Result<Predicate> DeserializePredicate(ByteReader& in);

void SerializeAtom(const Atom& a, ByteWriter& out);
Result<Atom> DeserializeAtom(ByteReader& in);

void SerializeCQ(const ConjunctiveQuery& q, ByteWriter& out);
Result<ConjunctiveQuery> DeserializeCQ(ByteReader& in);

/// Disjunct order is preserved exactly — rewriting output order is part
/// of the byte-identical-verdict contract (FormatAnswers/CLI output walk
/// the disjuncts in order).
void SerializeUCQ(const UnionOfCQs& ucq, ByteWriter& out);
Result<UnionOfCQs> DeserializeUCQ(ByteReader& in);

}  // namespace omqc

#endif  // OMQC_LOGIC_SERIALIZE_H_
