// Conjunctive queries and unions of conjunctive queries (Sec. 2).

#ifndef OMQC_LOGIC_CQ_H_
#define OMQC_LOGIC_CQ_H_

#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/instance.h"
#include "logic/substitution.h"

namespace omqc {

/// A conjunctive query q(x̄) := ∃ȳ (R1(v̄1) ∧ ... ∧ Rm(v̄m)).
/// `answer_vars` is x̄ (possibly with repeated variables and constants,
/// as produced by rewriting); all other body variables are existential.
struct ConjunctiveQuery {
  std::vector<Term> answer_vars;
  std::vector<Atom> body;

  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<Term> answers, std::vector<Atom> atoms)
      : answer_vars(std::move(answers)), body(std::move(atoms)) {}

  bool IsBoolean() const { return answer_vars.empty(); }

  /// Number of body atoms (|q| in the paper).
  size_t size() const { return body.size(); }

  /// All variables of the query in order of first occurrence
  /// (answer variables first).
  std::vector<Term> Variables() const;

  /// Variables occurring in the body but not among the answer variables.
  std::vector<Term> ExistentialVariables() const;

  /// Variables that are *shared* in the XRewrite sense (Sec. "Algorithm
  /// XRewrite"): free, or occurring more than once in the body (counting
  /// multiple occurrences inside one atom).
  std::set<Term> SharedVariables() const;

  /// Variables occurring in >= 2 distinct body atoms: var_{>=2}(q), Sec. 6.
  std::set<Term> VariablesInMultipleAtoms() const;

  /// All terms (constants and variables) occurring in the query: T(q).
  std::set<Term> AllTerms() const;

  /// Constants occurring anywhere in the query.
  std::set<Term> Constants() const;

  /// Applies a substitution to body and answer tuple.
  ConjunctiveQuery Substituted(const Substitution& s) const;

  /// Renames every variable with the prefix+counter scheme, returning a
  /// variable-disjoint copy ("q^i" in XRewrite).
  ConjunctiveQuery RenamedApart(int index) const;

  /// Component decomposition of the body, per Sec. 7.1 (co(q)). Atoms with
  /// no arguments are dropped. Each component keeps the answer variables
  /// that occur in it.
  std::vector<ConjunctiveQuery> Components() const;

  /// "q(X,Y) :- R(X,Z), S(Z,Y)".
  std::string ToString() const;

  bool operator==(const ConjunctiveQuery& other) const {
    return answer_vars == other.answer_vars && body == other.body;
  }
};

/// The frozen (canonical) database of a CQ: every variable is replaced by a
/// distinct fresh constant. Used by the small-witness containment algorithm
/// (proof of Prop. 10) and by chase-based CQ containment.
struct FrozenQuery {
  Database database;
  /// The image of the answer tuple under freezing.
  std::vector<Term> answer_tuple;
  /// Variable -> frozen constant map.
  Substitution freezing;
};

/// Freezes `q`, mapping each variable to a fresh constant "@f<k>_<name>".
/// `tag` disambiguates freezings in the same process.
FrozenQuery Freeze(const ConjunctiveQuery& q, const std::string& tag = "");

/// A union of conjunctive queries q1(x̄) ∨ ... ∨ qn(x̄).
struct UnionOfCQs {
  std::vector<ConjunctiveQuery> disjuncts;

  UnionOfCQs() = default;
  explicit UnionOfCQs(std::vector<ConjunctiveQuery> ds)
      : disjuncts(std::move(ds)) {}

  bool empty() const { return disjuncts.empty(); }
  size_t size() const { return disjuncts.size(); }

  /// max_i |q_i|: the maximum number of atoms in a disjunct.
  size_t MaxDisjunctSize() const;

  std::string ToString() const;
};

/// Checks that a CQ is well-formed: every answer variable occurs in the
/// body, and atom arities match their predicates.
Status ValidateCQ(const ConjunctiveQuery& q);

/// Structural equivalence modulo bijective variable renaming (the ≃ of
/// Algorithm 1). Constants must match exactly; answer tuples must correspond.
bool IsomorphicCQs(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace omqc

#endif  // OMQC_LOGIC_CQ_H_
