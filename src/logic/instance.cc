#include "logic/instance.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "base/string_util.h"
#include "logic/postings_kernels.h"

namespace omqc {

namespace {
const std::vector<AtomId>& EmptyIdVector() {
  static const std::vector<AtomId>* empty = new std::vector<AtomId>();
  return *empty;
}

const PredicatePostings& EmptyPostings() {
  static const PredicatePostings* empty = new PredicatePostings();
  return *empty;
}

/// Pipeline depth of the batched Add/Contains paths: hashes are computed
/// and dedup slots prefetched this many atoms ahead of the probe. Deep
/// enough to overlap a memory access, shallow enough that the hash ring
/// stays register/L1-resident.
constexpr size_t kProbePipeline = 8;
}  // namespace

std::optional<AtomId> Instance::ProbeHashed(AtomView v, size_t hash) const {
  if (slots_.empty()) return std::nullopt;
  const size_t mask = slots_.size() - 1;
  const uint16_t tag = TagOf(hash);
  size_t idx = hash & mask;
  while (slots_[idx] != kEmptySlot) {
    // The tag rejects nearly all non-matching chain entries without the
    // dependent record/pool loads behind view().
    if (slot_tags_[idx] == tag && view(slots_[idx]) == v) {
      return slots_[idx];
    }
    idx = (idx + 1) & mask;
  }
  return std::nullopt;
}

Instance::AddOutcome Instance::AddViewHashed(AtomView view, size_t hash) {
  assert(view.predicate().valid() && "Add of an atom with an invalid "
                                     "(default-constructed) predicate");
#ifndef NDEBUG
  for (const Term& t : view) {
    assert(t.valid() && "Add of an atom containing an invalid "
                        "(default-constructed) term");
  }
#endif
  assert(view.arity() <= 0xFF && "arena records store arity in one byte");
  // Grow the dedup table before probing so the insert path below always
  // has a free slot (load factor <= 1/2).
  if ((records_.size() + 1) * 2 > slots_.size()) {
    Rehash(slots_.empty() ? 16 : slots_.size() * 2);
  }
  const size_t mask = slots_.size() - 1;
  const uint16_t tag = TagOf(hash);
  size_t idx = hash & mask;
  while (slots_[idx] != kEmptySlot) {
    if (slot_tags_[idx] == tag && this->view(slots_[idx]) == view) {
      return {slots_[idx], false};
    }
    idx = (idx + 1) & mask;
  }
  const AtomId id = static_cast<AtomId>(records_.size());
  slots_[idx] = id;
  slot_tags_[idx] = tag;
  records_.push_back(AtomRecord{view.predicate(),
                                static_cast<uint32_t>(term_pool_.size()),
                                static_cast<uint8_t>(view.arity())});
  term_pool_.insert(term_pool_.end(), view.begin(), view.end());
  PredicatePostings& postings = by_predicate_[view.predicate().id()];
  if (postings.ids.empty()) {
    postings.uniform_arity = static_cast<uint32_t>(view.arity());
  } else if (postings.uniform_arity != view.arity()) {
    postings.uniform_arity = PredicatePostings::kMixedArity;
  }
  postings.ids.push_back(id);
  postings.begins.push_back(static_cast<uint32_t>(postings.terms.size()));
  postings.terms.insert(postings.terms.end(), view.begin(), view.end());
  for (size_t i = 0; i < view.arity(); ++i) {
    by_arg_[ArgKey{view.predicate().id(), static_cast<int>(i), view.arg(i)}]
        .push_back(id);
  }
  return {id, true};
}

Instance::AddOutcome Instance::AddView(AtomView view) {
  return AddViewHashed(view, view.hash());
}

void Instance::Rehash(size_t new_size) {
  slots_.assign(new_size, kEmptySlot);
  slot_tags_.assign(new_size, 0);
  const size_t mask = new_size - 1;
  for (AtomId id = 0; id < records_.size(); ++id) {
    const size_t hash = view(id).hash();
    size_t idx = hash & mask;
    while (slots_[idx] != kEmptySlot) idx = (idx + 1) & mask;
    slots_[idx] = id;
    slot_tags_[idx] = TagOf(hash);
  }
}

std::optional<AtomId> Instance::FindId(AtomView v) const {
  return ProbeHashed(v, v.hash());
}

void Instance::AddAll(const Instance& other) {
  if (&other == this) return;
  // Same software pipeline as AddBatch: hash ahead, prefetch the slot
  // lines, probe behind. (Each insert may rehash or reallocate, so the
  // prefetches are hints against the CURRENT table — stale hints after a
  // rehash are harmless and rehashes are O(log n) many.)
  size_t hashes[kProbePipeline];
  const size_t n = other.records_.size();
  const size_t lead = std::min(n, kProbePipeline);
  for (size_t i = 0; i < lead; ++i) {
    hashes[i] = other.view(static_cast<AtomId>(i)).hash();
    PrefetchSlot(hashes[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbePipeline < n) {
      const size_t h =
          other.view(static_cast<AtomId>(i + kProbePipeline)).hash();
      hashes[(i + kProbePipeline) % kProbePipeline] = h;
      PrefetchSlot(h);
    }
    AddViewHashed(other.view(static_cast<AtomId>(i)),
                  hashes[i % kProbePipeline]);
  }
}

size_t Instance::AddBatch(const std::vector<Atom>& atoms) {
  size_t hashes[kProbePipeline];
  const size_t n = atoms.size();
  const size_t lead = std::min(n, kProbePipeline);
  for (size_t i = 0; i < lead; ++i) {
    hashes[i] = ViewOf(atoms[i]).hash();
    PrefetchSlot(hashes[i]);
  }
  size_t inserted = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbePipeline < n) {
      const size_t h = ViewOf(atoms[i + kProbePipeline]).hash();
      hashes[(i + kProbePipeline) % kProbePipeline] = h;
      PrefetchSlot(h);
    }
    if (AddViewHashed(ViewOf(atoms[i]), hashes[i % kProbePipeline])
            .inserted) {
      ++inserted;
    }
  }
  return inserted;
}

size_t Instance::CountContained(const std::vector<Atom>& atoms) const {
  size_t hashes[kProbePipeline];
  const size_t n = atoms.size();
  const size_t lead = std::min(n, kProbePipeline);
  for (size_t i = 0; i < lead; ++i) {
    hashes[i] = ViewOf(atoms[i]).hash();
    PrefetchSlot(hashes[i]);
  }
  size_t contained = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbePipeline < n) {
      const size_t h = ViewOf(atoms[i + kProbePipeline]).hash();
      hashes[(i + kProbePipeline) % kProbePipeline] = h;
      PrefetchSlot(h);
    }
    if (ProbeHashed(ViewOf(atoms[i]), hashes[i % kProbePipeline])
            .has_value()) {
      ++contained;
    }
  }
  return contained;
}

const std::vector<AtomId>& Instance::IdsWith(Predicate p) const {
  auto it = by_predicate_.find(p.id());
  return it == by_predicate_.end() ? EmptyIdVector() : it->second.ids;
}

PostingsSpan Instance::Postings(Predicate p) const {
  auto it = by_predicate_.find(p.id());
  return PostingsSpan(p,
                      it == by_predicate_.end() ? &EmptyPostings()
                                                : &it->second);
}

const std::vector<AtomId>& Instance::IdsWithArg(Predicate p, int position,
                                                const Term& t) const {
  auto it = by_arg_.find(ArgKey{p.id(), position, t});
  return it == by_arg_.end() ? EmptyIdVector() : it->second;
}

std::pair<const AtomId*, const AtomId*> Instance::ArgIdRange(
    Predicate p, int position, const Term& t, AtomId lo, AtomId hi) const {
  return PostingsIdRange(IdsWithArg(p, position, t), lo, hi);
}

std::vector<Atom> Instance::AtomsWith(Predicate p) const {
  std::vector<Atom> out;
  const std::vector<AtomId>& ids = IdsWith(p);
  out.reserve(ids.size());
  for (AtomId id : ids) out.push_back(MaterializeAtom(id));
  return out;
}

std::vector<Atom> Instance::AtomsWithArg(Predicate p, int position,
                                         const Term& t) const {
  std::vector<Atom> out;
  const std::vector<AtomId>& ids = IdsWithArg(p, position, t);
  out.reserve(ids.size());
  for (AtomId id : ids) out.push_back(MaterializeAtom(id));
  return out;
}

std::vector<Term> Instance::ActiveDomain() const {
  // The term pool is exactly the multiset of all argument occurrences.
  std::set<Term> seen(term_pool_.begin(), term_pool_.end());
  return std::vector<Term>(seen.begin(), seen.end());
}

std::vector<Term> Instance::ActiveDomainConstants() const {
  std::set<Term> seen;
  for (const Term& t : term_pool_) {
    if (t.IsConstant()) seen.insert(t);
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

Schema Instance::InducedSchema() const {
  Schema schema;
  for (const auto& [pred_id, postings] : by_predicate_) {
    if (!postings.ids.empty()) {
      schema.Add(records_[postings.ids.front()].predicate);
    }
  }
  return schema;
}

bool Instance::IsDatabase() const {
  for (const Term& t : term_pool_) {
    if (!t.IsConstant()) return false;
  }
  return true;
}

Instance Instance::InducedBy(const std::set<Term>& terms) const {
  Instance out;
  for (AtomId id = 0; id < records_.size(); ++id) {
    AtomView a = view(id);
    bool inside = true;
    for (const Term& t : a) {
      if (terms.count(t) == 0) {
        inside = false;
        break;
      }
    }
    if (inside) out.AddView(a);
  }
  return out;
}

std::vector<Instance> Instance::ConnectedComponents() const {
  // Union-find over terms; 0-ary atoms are excluded (paper footnote 5).
  std::map<Term, Term> parent;
  std::function<Term(Term)> find = [&](Term t) {
    Term root = t;
    while (parent.at(root) != root) root = parent.at(root);
    while (parent.at(t) != root) {
      Term next = parent.at(t);
      parent[t] = root;
      t = next;
    }
    return root;
  };
  for (const Term& t : term_pool_) parent.emplace(t, t);
  for (AtomId id = 0; id < records_.size(); ++id) {
    AtomView a = view(id);
    if (a.arity() == 0) continue;
    Term first = find(a.arg(0));
    for (const Term& t : a) {
      parent[find(t)] = first;
    }
  }
  std::map<Term, Instance> components;
  for (AtomId id = 0; id < records_.size(); ++id) {
    AtomView a = view(id);
    if (a.arity() == 0) continue;
    components[find(a.arg(0))].AddView(a);
  }
  std::vector<Instance> out;
  out.reserve(components.size());
  for (auto& [root, inst] : components) out.push_back(std::move(inst));
  return out;
}

Database PrettifiedCopy(const Database& db, const std::string& prefix) {
  std::map<Term, Term> rename;
  int counter = 0;
  Database out;
  for (const Atom& atom : db.atoms()) {
    Atom copy = atom;
    for (Term& t : copy.args) {
      if (!t.IsConstant() || t.ToString().rfind('@', 0) != 0) continue;
      auto it = rename.find(t);
      if (it == rename.end()) {
        Term fresh = Term::Constant(prefix + std::to_string(counter++));
        it = rename.emplace(t, fresh).first;
      }
      t = it->second;
    }
    out.Add(copy);
  }
  return out;
}

std::string Instance::ToString() const {
  std::vector<Atom> sorted;
  sorted.reserve(records_.size());
  for (AtomId id = 0; id < records_.size(); ++id) {
    sorted.push_back(MaterializeAtom(id));
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> lines;
  lines.reserve(sorted.size());
  for (const Atom& a : sorted) lines.push_back(a.ToString() + ".");
  return JoinStrings(lines, "\n");
}

}  // namespace omqc
