#include "logic/instance.h"

#include <algorithm>
#include <functional>
#include <map>

#include "base/string_util.h"

namespace omqc {

namespace {
const std::vector<Atom>& EmptyAtomVector() {
  static const std::vector<Atom>* empty = new std::vector<Atom>();
  return *empty;
}
}  // namespace

bool Instance::Add(const Atom& atom) {
  if (!atom_set_.insert(atom).second) return false;
  atoms_.push_back(atom);
  by_predicate_[atom.predicate.id()].push_back(atom);
  for (size_t i = 0; i < atom.args.size(); ++i) {
    by_arg_[ArgKey{atom.predicate.id(), static_cast<int>(i), atom.args[i]}]
        .push_back(atom);
  }
  return true;
}

void Instance::AddAll(const Instance& other) {
  for (const Atom& a : other.atoms_) Add(a);
}

const std::vector<Atom>& Instance::AtomsWith(Predicate p) const {
  auto it = by_predicate_.find(p.id());
  return it == by_predicate_.end() ? EmptyAtomVector() : it->second;
}

const std::vector<Atom>& Instance::AtomsWithArg(Predicate p, int position,
                                                const Term& t) const {
  auto it = by_arg_.find(ArgKey{p.id(), position, t});
  return it == by_arg_.end() ? EmptyAtomVector() : it->second;
}

std::vector<Term> Instance::ActiveDomain() const {
  std::set<Term> seen;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) seen.insert(t);
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

std::vector<Term> Instance::ActiveDomainConstants() const {
  std::set<Term> seen;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.IsConstant()) seen.insert(t);
    }
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

Schema Instance::InducedSchema() const {
  Schema schema;
  for (const auto& [pred_id, atoms] : by_predicate_) {
    if (!atoms.empty()) schema.Add(atoms.front().predicate);
  }
  return schema;
}

bool Instance::IsDatabase() const {
  for (const Atom& a : atoms_) {
    if (!a.IsFact()) return false;
  }
  return true;
}

Instance Instance::InducedBy(const std::set<Term>& terms) const {
  Instance out;
  for (const Atom& a : atoms_) {
    bool inside = true;
    for (const Term& t : a.args) {
      if (terms.count(t) == 0) {
        inside = false;
        break;
      }
    }
    if (inside) out.Add(a);
  }
  return out;
}

std::vector<Instance> Instance::ConnectedComponents() const {
  // Union-find over terms; 0-ary atoms are excluded (paper footnote 5).
  std::map<Term, Term> parent;
  std::function<Term(Term)> find = [&](Term t) {
    Term root = t;
    while (parent.at(root) != root) root = parent.at(root);
    while (parent.at(t) != root) {
      Term next = parent.at(t);
      parent[t] = root;
      t = next;
    }
    return root;
  };
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) parent.emplace(t, t);
  }
  for (const Atom& a : atoms_) {
    if (a.args.empty()) continue;
    Term first = find(a.args.front());
    for (const Term& t : a.args) {
      parent[find(t)] = first;
    }
  }
  std::map<Term, Instance> components;
  for (const Atom& a : atoms_) {
    if (a.args.empty()) continue;
    components[find(a.args.front())].Add(a);
  }
  std::vector<Instance> out;
  out.reserve(components.size());
  for (auto& [root, inst] : components) out.push_back(std::move(inst));
  return out;
}

Database PrettifiedCopy(const Database& db, const std::string& prefix) {
  std::map<Term, Term> rename;
  int counter = 0;
  Database out;
  for (const Atom& atom : db.atoms()) {
    Atom copy = atom;
    for (Term& t : copy.args) {
      if (!t.IsConstant() || t.ToString().rfind('@', 0) != 0) continue;
      auto it = rename.find(t);
      if (it == rename.end()) {
        Term fresh = Term::Constant(prefix + std::to_string(counter++));
        it = rename.emplace(t, fresh).first;
      }
      t = it->second;
    }
    out.Add(copy);
  }
  return out;
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(atoms_.size());
  std::vector<Atom> sorted = atoms_;
  std::sort(sorted.begin(), sorted.end());
  for (const Atom& a : sorted) lines.push_back(a.ToString() + ".");
  return JoinStrings(lines, "\n");
}

}  // namespace omqc
