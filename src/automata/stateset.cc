#include "automata/stateset.h"

#include <cassert>

namespace omqc {

StateSetArena::StateSetArena(int num_states)
    : num_states_(num_states),
      words_per_set_(static_cast<size_t>((num_states + 63) / 64)) {
  if (words_per_set_ == 0) words_per_set_ = 1;
  scratch_.assign(words_per_set_, 0);
}

uint64_t StateSetArena::HashWords(const uint64_t* w, size_t n) {
  // FNV-1a over the words; the hash-cons table masks the low bits.
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= w[i];
    h *= 1099511628211ull;
  }
  return h;
}

void StateSetArena::Rehash(size_t new_slots) {
  slots_.assign(new_slots, kEmptySlot);
  const size_t mask = new_slots - 1;
  for (size_t id = 0; id < count_; ++id) {
    uint64_t h = HashWords(words(static_cast<StateSetId>(id)), words_per_set_);
    size_t idx = h & mask;
    while (slots_[idx] != kEmptySlot) idx = (idx + 1) & mask;
    slots_[idx] = static_cast<StateSetId>(id);
  }
}

StateSetId StateSetArena::InternScratch() {
  if ((count_ + 1) * 2 > slots_.size()) {
    Rehash(slots_.empty() ? 64 : slots_.size() * 2);
  }
  const size_t mask = slots_.size() - 1;
  const uint64_t h = HashWords(scratch_.data(), words_per_set_);
  size_t idx = h & mask;
  while (slots_[idx] != kEmptySlot) {
    const uint64_t* existing = words(slots_[idx]);
    bool equal = true;
    for (size_t i = 0; i < words_per_set_; ++i) {
      if (existing[i] != scratch_[i]) {
        equal = false;
        break;
      }
    }
    if (equal) return slots_[idx];
    idx = (idx + 1) & mask;
  }
  const StateSetId id = static_cast<StateSetId>(count_);
  slots_[idx] = id;
  words_.insert(words_.end(), scratch_.begin(), scratch_.end());
  ++count_;
  return id;
}

StateSetId StateSetArena::InternSingleton(int state) {
  assert(state >= 0 && state < num_states_);
  for (uint64_t& w : scratch_) w = 0;
  scratch_[static_cast<size_t>(state) / 64] |=
      uint64_t{1} << (static_cast<size_t>(state) % 64);
  return InternScratch();
}

StateSetId StateSetArena::InternUnion(const uint64_t* base, int extra) {
  // Copy first: `base` may point into words_, which InternScratch can
  // reallocate.
  for (size_t i = 0; i < words_per_set_; ++i) scratch_[i] = base[i];
  if (extra >= 0) {
    assert(extra < num_states_);
    scratch_[static_cast<size_t>(extra) / 64] |=
        uint64_t{1} << (static_cast<size_t>(extra) % 64);
  }
  return InternScratch();
}

int StateSetArena::Popcount(StateSetId id) const {
  const uint64_t* w = words(id);
  int n = 0;
  for (size_t i = 0; i < words_per_set_; ++i) {
    n += __builtin_popcountll(w[i]);
  }
  return n;
}

}  // namespace omqc
