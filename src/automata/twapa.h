// Two-way alternating parity automata on finite labeled trees
// (Defs. 10 and 11 of the paper's appendix).
//
// This substrate covers exactly what the paper's constructions need:
//   * all constructions in Sec. 5 use the constant parity Ω(s) = 1, i.e.
//     every accepting run is finite — acceptance is a least fixpoint;
//   * the complement automaton (used in Prop. 25's (C ∩ A_{Q1}) ∩ comp(A_{Q2}))
//     dualizes formulas and flips the parity, giving a greatest fixpoint.
// Membership is decided exactly for both modes by the corresponding
// fixpoint over (tree node, state) pairs. Emptiness is provided for
// one-way nondeterministic tree automata and, for small alphabets, via
// bounded tree enumeration for 2WAPAs (the production guarded-containment
// path in src/core runs the paper's automaton on the fly instead; see
// DESIGN.md).

#ifndef OMQC_AUTOMATA_TWAPA_H_
#define OMQC_AUTOMATA_TWAPA_H_

#include <functional>
#include <optional>
#include <vector>

#include "automata/pbf.h"
#include "base/status.h"

namespace omqc {

class ResourceGovernor;

/// A finite, ordered, Γ-labeled tree with integer labels.
struct LabeledTree {
  struct Node {
    int label = 0;
    int parent = -1;  ///< -1 for the root
    std::vector<int> children;
  };
  std::vector<Node> nodes;

  /// Index of the root node (always 0 by construction).
  int root() const { return 0; }
  bool empty() const { return nodes.empty(); }

  /// Creates a single-node tree.
  static LabeledTree Leaf(int label);
  /// Appends a child with the given label to `parent`; returns its index.
  int AddChild(int parent, int label);

  std::string ToString() const;
};

/// Acceptance semantics derived from the parity function (see header
/// comment): all priorities odd = least fixpoint (finite runs only), all
/// priorities even = greatest fixpoint.
enum class AcceptanceMode {
  kFiniteRuns,  ///< all priorities odd (the paper's Ω ≡ 1)
  kSafety,      ///< all priorities even (arises from complementation)
};

/// A 2WAPA A = (S, Γ, δ, s0, Ω). The transition function is a callback so
/// constructions with very large alphabets stay lazy.
struct Twapa {
  int num_states = 0;
  int num_labels = 0;
  int initial_state = 0;
  AcceptanceMode mode = AcceptanceMode::kFiniteRuns;
  /// δ(state, label). Must be total on [0,num_states) × [0,num_labels).
  std::function<Formula(int state, int label)> delta;
};

/// Exact membership: does A accept `tree`? (fixpoint over nodes × states).
bool Accepts(const Twapa& automaton, const LabeledTree& tree);

/// The complement automaton: dual formulas, flipped acceptance mode.
/// L(comp(A)) = complement of L(A) over all finite trees.
Twapa Complement(const Twapa& automaton);

/// Product automaton accepting L(a) ∩ L(b). Requires identical alphabets
/// and acceptance modes; state space is the disjoint union plus a fresh
/// initial state.
Result<Twapa> Intersect(const Twapa& a, const Twapa& b);

/// Bounded emptiness: searches for an accepted tree with at most
/// `max_nodes` nodes and branching at most `max_branching`, enumerating
/// trees over the automaton's alphabet. Returns a witness if found,
/// nullopt if no accepted tree exists within the bound. Exponential; for
/// test-scale automata only. A non-null `governor` (base/governor.h) is
/// checked per candidate tree; a trip shrinks the explored bound — the
/// search returns nullopt early, and callers that must distinguish "no
/// witness within the bound" from "cut short" check governor->tripped().
std::optional<LabeledTree> FindAcceptedTree(const Twapa& automaton,
                                            int max_nodes, int max_branching,
                                            ResourceGovernor* governor =
                                                nullptr);

/// A one-way nondeterministic top-down tree automaton over finite ordered
/// trees of branching factor <= arity of the chosen rule. A rule
/// (state, label, child_states) lets a node labeled `label` in `state`
/// send child_states[i] to its i-th child; the node must have exactly
/// child_states.size() children.
struct Nta {
  struct Rule {
    int state;
    int label;
    std::vector<int> child_states;
  };
  int num_states = 0;
  int num_labels = 0;
  int initial_state = 0;
  std::vector<Rule> rules;
};

/// Exact NTA emptiness (least fixpoint on productive states).
/// Returns true iff L(A) is empty.
bool IsEmpty(const Nta& automaton);

/// Exact NTA membership.
bool Accepts(const Nta& automaton, const LabeledTree& tree);

/// Exact NTA infinity test (Sec. 7.2 reduces UCQ-rewritability to it):
/// L(A) is infinite iff some productive, reachable state lies on a cycle
/// of the reachability graph restricted to productive states.
bool IsInfinite(const Nta& automaton);

}  // namespace omqc

#endif  // OMQC_AUTOMATA_TWAPA_H_
