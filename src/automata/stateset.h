// Flat interned bitset state-sets and the subsumption antichain used by
// the on-the-fly 2WAPA emptiness engine (automata/emptiness.h).
//
// The antichain construction manipulates obligation sets (subsets of the
// automaton's states) by the million; representing them as std::set<int>
// — one node allocation per element, pointer-chasing comparisons — is what
// made the reference worklist construction the cost center. Here every
// set is a fixed-width bitset of ceil(num_states/64) words living in ONE
// flat arena vector, hash-consed on insert so each distinct set is stored
// exactly once and is afterwards named by a dense 32-bit StateSetId. All
// downstream bookkeeping (status memo, move tables, the antichain) indexes
// by id; subset tests are a handful of AND/compare word ops on contiguous
// memory.
//
// Invalidation: the arena's flat storage may reallocate on intern, so raw
// word pointers obtained via words(id) are invalidated by the next
// Intern*. Ids are stable forever. Callers that build a set while reading
// another must copy into the scratch buffer first (InternUnion does).

#ifndef OMQC_AUTOMATA_STATESET_H_
#define OMQC_AUTOMATA_STATESET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omqc {

/// Dense name of an interned state set, assigned in first-seen order.
using StateSetId = uint32_t;

/// Hash-consing arena for fixed-width bitsets. All sets share one width
/// (decided at construction from the automaton's state count).
class StateSetArena {
 public:
  explicit StateSetArena(int num_states);

  int num_states() const { return num_states_; }
  size_t words_per_set() const { return words_per_set_; }
  size_t size() const { return count_; }

  /// Start of the words of set `id` (width words_per_set()). Invalidated
  /// by the next Intern*.
  const uint64_t* words(StateSetId id) const {
    return words_.data() + static_cast<size_t>(id) * words_per_set_;
  }

  /// Interns the singleton {state}.
  StateSetId InternSingleton(int state);

  /// Interns base ∪ extra, where `base` is a word span of this arena's
  /// width (typically a scratch buffer) and `extra` is one state (-1 for
  /// none). Copies through the internal scratch, so `base` MAY point into
  /// the arena itself.
  StateSetId InternUnion(const uint64_t* base, int extra);

  /// True iff set `a` ⊆ set `b`.
  bool IsSubset(StateSetId a, StateSetId b) const {
    const uint64_t* wa = words(a);
    const uint64_t* wb = words(b);
    for (size_t i = 0; i < words_per_set_; ++i) {
      if ((wa[i] & ~wb[i]) != 0) return false;
    }
    return true;
  }

  /// Number of states in set `id`.
  int Popcount(StateSetId id) const;

  /// Invokes `fn(state)` for every state of set `id`, ascending.
  template <typename Fn>
  void ForEachState(StateSetId id, Fn fn) const {
    const uint64_t* w = words(id);
    for (size_t i = 0; i < words_per_set_; ++i) {
      uint64_t word = w[i];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(static_cast<int>(i * 64) + bit);
        word &= word - 1;
      }
    }
  }

  /// Bytes held by the arena (flat words + hash slots); O(1).
  size_t MemoryBytes() const {
    return words_.capacity() * sizeof(uint64_t) +
           slots_.capacity() * sizeof(StateSetId);
  }

 private:
  /// Looks up/inserts the set currently staged in scratch_. Returns its id.
  StateSetId InternScratch();
  void Rehash(size_t new_slots);
  static uint64_t HashWords(const uint64_t* w, size_t n);

  int num_states_;
  size_t words_per_set_;
  size_t count_ = 0;
  std::vector<uint64_t> words_;     ///< count_ * words_per_set_ flat words
  std::vector<uint64_t> scratch_;   ///< staging buffer, one set wide
  /// Open-addressing hash-cons table over ids (empty = kEmptySlot).
  std::vector<StateSetId> slots_;
  static constexpr StateSetId kEmptySlot = 0xFFFFFFFFu;
};

/// The ⊆-maximal frontier of the productive sets discovered so far.
/// Monotonicity (S ⊆ T and T productive ⟹ S productive) makes the
/// productive family downward closed, so membership of a candidate in the
/// downward closure — `SubsumedBy` — is one subset test per antichain
/// member. Inserts keep the container a strict antichain.
class Antichain {
 public:
  explicit Antichain(const StateSetArena* arena) : arena_(arena) {}

  size_t size() const { return members_.size(); }
  const std::vector<StateSetId>& members() const { return members_; }

  /// True iff `id` ⊆ some member (hence productive by monotonicity).
  bool SubsumedBy(StateSetId id) const {
    for (StateSetId m : members_) {
      if (arena_->IsSubset(id, m)) return true;
    }
    return false;
  }

  /// Inserts a newly proven productive set: drops members it subsumes and
  /// skips the insert when a member already covers it.
  void Insert(StateSetId id) {
    size_t keep = 0;
    for (size_t i = 0; i < members_.size(); ++i) {
      if (arena_->IsSubset(id, members_[i])) return;  // already covered
      if (!arena_->IsSubset(members_[i], id)) {
        members_[keep++] = members_[i];
      }
    }
    members_.resize(keep);
    members_.push_back(id);
  }

 private:
  const StateSetArena* arena_;
  std::vector<StateSetId> members_;
};

}  // namespace omqc

#endif  // OMQC_AUTOMATA_STATESET_H_
