// Positive Boolean formulas B+(X) over transition atoms (Def. 10).

#ifndef OMQC_AUTOMATA_PBF_H_
#define OMQC_AUTOMATA_PBF_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace omqc {

/// Direction of a 2WAPA move: up to the parent, stay, or to child(ren).
enum class Move : int {
  kUp = -1,    ///< α = -1
  kStay = 0,   ///< α = 0
  kChild = 1,  ///< α = * (some child for ◇, all children for □)
};

/// A transition atom ⟨α⟩s (existential) or [α]s (universal).
struct TransitionAtom {
  Move move = Move::kStay;
  bool universal = false;  ///< true for [α]s, false for ⟨α⟩s
  int state = 0;

  std::string ToString() const;
};

/// An immutable positive Boolean formula over transition atoms.
class Formula {
 public:
  enum class Kind { kTrue, kFalse, kAnd, kOr, kAtom };

  static Formula True();
  static Formula False();
  static Formula Atom(TransitionAtom atom);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  /// n-ary conjunction/disjunction; empty input yields True()/False().
  static Formula AndAll(const std::vector<Formula>& fs);
  static Formula OrAll(const std::vector<Formula>& fs);

  Kind kind() const { return node_->kind; }
  const TransitionAtom& atom() const { return node_->atom; }
  const Formula& left() const { return *node_->left; }
  const Formula& right() const { return *node_->right; }

  /// Evaluates the formula under a valuation of its transition atoms.
  bool Evaluate(
      const std::function<bool(const TransitionAtom&)>& valuation) const;

  /// The dual formula: swaps ∧/∨, true/false and ⟨⟩/[] (used by automaton
  /// complementation).
  Formula Dual() const;

  /// All transition atoms occurring in the formula.
  void CollectAtoms(std::vector<TransitionAtom>& out) const;

  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    TransitionAtom atom;
    std::shared_ptr<const Formula> left, right;
  };
  explicit Formula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Shorthand constructors mirroring the paper's notation: ◇s = some move
/// in {-1,0,*} to state s; □s = the corresponding universal version.
Formula Diamond(Move move, int state);
Formula Box(Move move, int state);

}  // namespace omqc

#endif  // OMQC_AUTOMATA_PBF_H_
