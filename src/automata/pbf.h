// Positive Boolean formulas B+(X) over transition atoms (Def. 10), plus
// the memoized minimal-model DNF used by the emptiness engines: a
// positive formula is equivalent to the disjunction of its ⊆-minimal
// models, and for downward (child-moving) formulas each minimal model is
// exactly one obligation disjunct of the subset construction.

#ifndef OMQC_AUTOMATA_PBF_H_
#define OMQC_AUTOMATA_PBF_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace omqc {

/// Direction of a 2WAPA move: up to the parent, stay, or to child(ren).
enum class Move : int {
  kUp = -1,    ///< α = -1
  kStay = 0,   ///< α = 0
  kChild = 1,  ///< α = * (some child for ◇, all children for □)
};

/// A transition atom ⟨α⟩s (existential) or [α]s (universal).
struct TransitionAtom {
  Move move = Move::kStay;
  bool universal = false;  ///< true for [α]s, false for ⟨α⟩s
  int state = 0;

  std::string ToString() const;
};

/// An immutable positive Boolean formula over transition atoms.
class Formula {
 public:
  enum class Kind { kTrue, kFalse, kAnd, kOr, kAtom };

  static Formula True();
  static Formula False();
  static Formula Atom(TransitionAtom atom);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  /// n-ary conjunction/disjunction; empty input yields True()/False().
  static Formula AndAll(const std::vector<Formula>& fs);
  static Formula OrAll(const std::vector<Formula>& fs);

  Kind kind() const { return node_->kind; }
  const TransitionAtom& atom() const { return node_->atom; }
  const Formula& left() const { return *node_->left; }
  const Formula& right() const { return *node_->right; }

  /// Stable identity of the underlying (immutable, shared) formula node:
  /// copies of one Formula share it. Used as a memoization key; only
  /// meaningful while some copy of the formula is alive (the node address
  /// can be recycled after the last copy dies — caches pin a copy).
  const void* id() const { return node_.get(); }

  /// Evaluates the formula under a valuation of its transition atoms.
  bool Evaluate(
      const std::function<bool(const TransitionAtom&)>& valuation) const;

  /// The dual formula: swaps ∧/∨, true/false and ⟨⟩/[] (used by automaton
  /// complementation).
  Formula Dual() const;

  /// All transition atoms occurring in the formula.
  void CollectAtoms(std::vector<TransitionAtom>& out) const;

  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    TransitionAtom atom;
    std::shared_ptr<const Formula> left, right;
  };
  explicit Formula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Shorthand constructors mirroring the paper's notation: ◇s = some move
/// in {-1,0,*} to state s; □s = the corresponding universal version.
Formula Diamond(Move move, int state);
Formula Box(Move move, int state);

/// One minimal model of a downward transition formula, i.e. one obligation
/// disjunct of the subset construction: the existential obligations
/// (⟨*⟩s — each needs some child) and the universal ones ([*]s — imposed
/// on every child). Both lists are sorted ascending and duplicate-free.
struct DownwardDisjunct {
  std::vector<int> existential;
  std::vector<int> universal;
};

/// True iff `a` subsumes `b` as a disjunct of a positive DNF: a's
/// obligations are a subset of b's, so any tree satisfying b satisfies a
/// and b can be dropped from the disjunction.
bool DisjunctSubsumes(const DownwardDisjunct& a, const DownwardDisjunct& b);

/// Appends `d` to the ⊆-minimized disjunct list `out`: dropped when an
/// existing disjunct subsumes it, and evicts the ones it subsumes.
void AddMinimized(std::vector<DownwardDisjunct>& out, DownwardDisjunct d);

/// Memoized formula → minimal-model computation for downward formulas.
/// The cache is keyed by Formula node identity (Formula::id) and pins a
/// copy of every memoized formula, so node addresses stay unique for the
/// cache's lifetime and repeated transition evaluations short-circuit to
/// a lookup. Not thread-safe: the emptiness engine keeps one cache per
/// worker.
class DownwardDnfCache {
 public:
  /// The ⊆-minimal disjuncts of `f`'s DNF. Empty vector = unsatisfiable
  /// (false); a single all-empty disjunct = true. Returns Unsupported for
  /// up/stay atoms, ResourceExhausted when a product exceeds
  /// `max_disjuncts` before minimization brings it back under.
  Result<const std::vector<DownwardDisjunct>*> MinimalModels(
      const Formula& f, size_t max_disjuncts);

  size_t size() const { return memo_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    Formula pin;  ///< keeps the node (and thus the key) alive
    std::vector<DownwardDisjunct> models;
  };
  std::unordered_map<const void*, Entry> memo_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace omqc

#endif  // OMQC_AUTOMATA_PBF_H_
