#include "automata/downward.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/governor.h"
#include "base/string_util.h"

namespace omqc {
namespace {

using StateSet = std::set<int>;

/// A DNF disjunct over downward transition atoms: the existential
/// obligations (each needs some child) and the universal ones (needed at
/// every child).
struct Disjunct {
  StateSet existential;
  StateSet universal;
};

/// Computes the DNF of a formula over kChild atoms. Empty result = false;
/// a single empty disjunct = true.
Result<std::vector<Disjunct>> ToDnf(const Formula& f, size_t max_disjuncts) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return std::vector<Disjunct>{Disjunct{}};
    case Formula::Kind::kFalse:
      return std::vector<Disjunct>{};
    case Formula::Kind::kAtom: {
      const TransitionAtom& atom = f.atom();
      if (atom.move != Move::kChild) {
        return Status::Unsupported(
            "only downward (child-moving) automata are convertible");
      }
      Disjunct d;
      (atom.universal ? d.universal : d.existential).insert(atom.state);
      return std::vector<Disjunct>{d};
    }
    case Formula::Kind::kAnd: {
      OMQC_ASSIGN_OR_RETURN(std::vector<Disjunct> left,
                            ToDnf(f.left(), max_disjuncts));
      OMQC_ASSIGN_OR_RETURN(std::vector<Disjunct> right,
                            ToDnf(f.right(), max_disjuncts));
      std::vector<Disjunct> out;
      for (const Disjunct& a : left) {
        for (const Disjunct& b : right) {
          Disjunct merged = a;
          merged.existential.insert(b.existential.begin(),
                                    b.existential.end());
          merged.universal.insert(b.universal.begin(), b.universal.end());
          out.push_back(std::move(merged));
          if (out.size() > max_disjuncts) {
            return Status::ResourceExhausted("DNF blow-up");
          }
        }
      }
      return out;
    }
    case Formula::Kind::kOr: {
      OMQC_ASSIGN_OR_RETURN(std::vector<Disjunct> left,
                            ToDnf(f.left(), max_disjuncts));
      OMQC_ASSIGN_OR_RETURN(std::vector<Disjunct> right,
                            ToDnf(f.right(), max_disjuncts));
      left.insert(left.end(), right.begin(), right.end());
      if (left.size() > max_disjuncts) {
        return Status::ResourceExhausted("DNF blow-up");
      }
      return left;
    }
  }
  return Status::Internal("unknown formula kind");
}

}  // namespace

Result<Nta> DownwardToNta(const Twapa& automaton,
                          const DownwardOptions& options) {
  if (automaton.mode != AcceptanceMode::kFiniteRuns) {
    return Status::Unsupported(
        "the conversion targets finite-runs (all-priorities-odd) automata");
  }
  Nta nta;
  nta.num_labels = automaton.num_labels;

  std::map<StateSet, int> state_id;
  // The worklist aliases the map's keys: node-based map keys are stable
  // under further inserts, so growing the worklist never copies a set.
  std::vector<const StateSet*> worklist;
  auto intern = [&](StateSet s) {
    auto it = state_id.find(s);
    if (it != state_id.end()) return it->second;
    int id = static_cast<int>(state_id.size());
    auto [slot, inserted] = state_id.emplace(std::move(s), id);
    (void)inserted;
    worklist.push_back(&slot->first);
    return id;
  };
  nta.initial_state = intern({automaton.initial_state});

  for (size_t next = 0; next < worklist.size(); ++next) {
    if (options.governor != nullptr) {
      OMQC_RETURN_IF_ERROR(options.governor->Check());
    }
    if (state_id.size() > options.max_states) {
      return Status::ResourceExhausted(
          StrCat("more than ", options.max_states, " obligation sets"));
    }
    // No copy: the pointee lives in state_id's keys; intern() may grow
    // the worklist vector but never moves the sets themselves.
    const StateSet& obligations = *worklist[next];
    int from = state_id.at(obligations);
    for (int label = 0; label < automaton.num_labels; ++label) {
      if (options.governor != nullptr) {
        OMQC_RETURN_IF_ERROR(options.governor->Check());
      }
      // Conjoin the transition formulas of all obligations.
      Formula conj = Formula::True();
      for (int q : obligations) {
        conj = Formula::And(conj, automaton.delta(q, label));
      }
      OMQC_ASSIGN_OR_RETURN(std::vector<Disjunct> dnf,
                            ToDnf(conj, options.max_disjuncts));
      for (const Disjunct& d : dnf) {
        if (static_cast<int>(d.existential.size()) > options.max_branching) {
          return Status::InvalidArgument(
              "a disjunct needs more children than max_branching");
        }
        Nta::Rule rule;
        rule.state = from;
        rule.label = label;
        if (d.existential.empty()) {
          // Leaf rule: universal obligations are vacuous with no children.
          nta.rules.push_back(std::move(rule));
          continue;
        }
        for (int e : d.existential) {
          StateSet child = d.universal;
          child.insert(e);
          rule.child_states.push_back(intern(child));
        }
        nta.rules.push_back(std::move(rule));
      }
    }
  }
  nta.num_states = static_cast<int>(state_id.size());
  return nta;
}

Result<bool> DownwardIsEmpty(const Twapa& automaton,
                             const DownwardOptions& options) {
  OMQC_ASSIGN_OR_RETURN(Nta nta, DownwardToNta(automaton, options));
  return IsEmpty(nta);
}

}  // namespace omqc
