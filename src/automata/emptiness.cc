#include "automata/emptiness.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/downward.h"
#include "automata/stateset.h"
#include "base/governor.h"
#include "base/string_util.h"
#include "base/thread_pool.h"

namespace omqc {

void EmptinessStats::Merge(const EmptinessStats& other) {
  states_explored += other.states_explored;
  states_subsumed += other.states_subsumed;
  antichain_size = std::max(antichain_size, other.antichain_size);
  emptiness_rounds += other.emptiness_rounds;
  dnf_cache_hits += other.dnf_cache_hits;
  dnf_cache_misses += other.dnf_cache_misses;
}

namespace {

/// Governor probe stride inside a set's label-expansion loop, matching the
/// homomorphism scan kernels (DESIGN.md "Governor check-site placement").
constexpr int kGovernorStride = 64;

/// Worker-local lazy (state,label) → minimal-models table. The underlying
/// DownwardDnfCache gives sharing within one formula tree; this dense memo
/// is the cross-call win, because Twapa::delta builds a fresh tree per
/// invocation so node-pointer keys never repeat across calls.
class TransitionOracle {
 public:
  TransitionOracle(const Twapa* automaton, size_t max_disjuncts)
      : automaton_(automaton), max_disjuncts_(max_disjuncts) {}

  Result<const std::vector<DownwardDisjunct>*> Models(int state, int label) {
    const uint64_t key =
        static_cast<uint64_t>(state) *
            static_cast<uint64_t>(automaton_->num_labels) +
        static_cast<uint64_t>(label);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    Formula f = automaton_->delta(state, label);
    // The pointer aims into cache_'s own storage: entries are never
    // erased and unordered_map references are rehash-stable, so it
    // outlives every use (cache_ and memo_ share this oracle's lifetime).
    OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* models,
                          cache_.MinimalModels(f, max_disjuncts_));
    memo_.emplace(key, models);
    return models;
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  const Twapa* automaton_;
  size_t max_disjuncts_;
  DownwardDnfCache cache_;
  std::unordered_map<uint64_t, const std::vector<DownwardDisjunct>*> memo_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

DownwardDisjunct MergeDisjuncts(const DownwardDisjunct& a,
                                const DownwardDisjunct& b) {
  DownwardDisjunct out;
  out.existential.reserve(a.existential.size() + b.existential.size());
  std::set_union(a.existential.begin(), a.existential.end(),
                 b.existential.begin(), b.existential.end(),
                 std::back_inserter(out.existential));
  out.universal.reserve(a.universal.size() + b.universal.size());
  std::set_union(a.universal.begin(), a.universal.end(), b.universal.begin(),
                 b.universal.end(), std::back_inserter(out.universal));
  return out;
}

/// The result of expanding one obligation set across every label: either
/// some (label, disjunct) is satisfied by a leaf, or the ⊆-minimized
/// disjuncts of ALL labels merged into one list. The merge is sound
/// because a disjunct constrains only the child subtrees — which label
/// the node itself carries is an independent existential choice — and a
/// subsuming disjunct's children are subsets of the subsumed one's, so
/// their productivity is implied by monotonicity.
struct Expansion {
  bool leaf = false;
  std::vector<DownwardDisjunct> disjuncts;
};

Result<Expansion> ExpandSet(const Twapa& automaton,
                            const std::vector<int>& members,
                            TransitionOracle& oracle,
                            const EmptinessOptions& options) {
  Expansion out;
  std::vector<DownwardDisjunct> models;
  std::vector<DownwardDisjunct> next;
  for (int label = 0; label < automaton.num_labels; ++label) {
    if (options.governor != nullptr && label % kGovernorStride == 0) {
      OMQC_RETURN_IF_ERROR(options.governor->Check());
    }
    // Product of the members' minimal models, minimized as it grows.
    models.assign(1, DownwardDisjunct{});  // neutral element: true
    bool falsified = false;
    for (int q : members) {
      OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* qm,
                            oracle.Models(q, label));
      if (qm->empty()) {  // δ(q, label) ≡ false kills the label
        falsified = true;
        break;
      }
      next.clear();
      for (const DownwardDisjunct& a : models) {
        for (const DownwardDisjunct& b : *qm) {
          AddMinimized(next, MergeDisjuncts(a, b));
          if (next.size() > options.max_disjuncts) {
            return Status::ResourceExhausted("DNF blow-up");
          }
        }
      }
      models.swap(next);
    }
    if (falsified) continue;
    for (DownwardDisjunct& d : models) {
      if (static_cast<int>(d.existential.size()) > options.max_branching) {
        return Status::InvalidArgument(
            "a disjunct needs more children than max_branching");
      }
      if (d.existential.empty()) {
        // A leaf discharges the disjunct: universal obligations are
        // vacuous with no children. The set is productive outright.
        out.leaf = true;
        out.disjuncts.clear();
        return out;
      }
      AddMinimized(out.disjuncts, std::move(d));
      if (out.disjuncts.size() > options.max_disjuncts) {
        return Status::ResourceExhausted("DNF blow-up");
      }
    }
  }
  return out;
}

/// See the header's file comment for the algorithm.
class AntichainEngine {
 public:
  AntichainEngine(const Twapa& automaton, const EmptinessOptions& options)
      : automaton_(automaton),
        options_(options),
        arena_(automaton.num_states),
        antichain_(&arena_),
        word_buf_(arena_.words_per_set(), 0) {}

  Result<bool> Run();

  /// Final counters (valid after Run, including on error returns).
  EmptinessStats Stats() const {
    EmptinessStats out = stats_;
    out.antichain_size = antichain_.size();
    for (const auto& oracle : oracles_) {
      out.dnf_cache_hits += oracle->hits();
      out.dnf_cache_misses += oracle->misses();
    }
    return out;
  }

 private:
  static constexpr uint8_t kProductive = 1;

  /// Marks `id` productive, grows the antichain, and queues `id` so the
  /// cascade re-checks its recorded parents. Returns true iff `id` is the
  /// initial set (=> the language is non-empty, early exit).
  bool MarkProductive(StateSetId id) {
    if ((status_[id] & kProductive) != 0) return false;
    status_[id] |= kProductive;
    antichain_.Insert(id);
    pending_queue_.push_back(id);
    return id == init_id_;
  }

  /// Interns one child obligation set; brand-new sets are either proven
  /// productive by antichain subsumption on the spot or queued for
  /// expansion. Every created set is thereby always accounted for.
  Result<StateSetId> InternChild(const uint64_t* base, int extra,
                                 std::vector<StateSetId>& out_frontier,
                                 bool& done) {
    const size_t before = arena_.size();
    StateSetId child = arena_.InternUnion(base, extra);
    if (arena_.size() > before) {
      if (arena_.size() > options_.max_states) {
        return Status::ResourceExhausted(
            StrCat("more than ", options_.max_states, " obligation sets"));
      }
      status_.push_back(0);
      groups_.push_back({});
      parents_.push_back({});
      if (antichain_.SubsumedBy(child)) {
        ++stats_.states_subsumed;
        if (MarkProductive(child)) done = true;
      } else {
        out_frontier.push_back(child);
      }
    }
    return child;
  }

  /// Folds one set's expansion into the engine state: leaf-productive
  /// sets join the antichain, others record their child groups (the set
  /// becomes productive when some group is entirely productive).
  Status MergeExpansion(StateSetId id, Expansion expansion,
                        std::vector<StateSetId>& out_frontier, bool& done) {
    ++stats_.states_explored;
    if (expansion.leaf) {
      if (MarkProductive(id)) done = true;
      return Status::OK();
    }
    std::vector<std::vector<StateSetId>> groups;
    groups.reserve(expansion.disjuncts.size());
    for (const DownwardDisjunct& d : expansion.disjuncts) {
      std::fill(word_buf_.begin(), word_buf_.end(), 0);
      for (int u : d.universal) {
        word_buf_[static_cast<size_t>(u) / 64] |=
            uint64_t{1} << (static_cast<size_t>(u) % 64);
      }
      std::vector<StateSetId> children;
      for (int e : d.existential) {
        if (std::binary_search(d.universal.begin(), d.universal.end(), e)) {
          continue;  // univ ∪ {e} == univ: covered by the maximal children
        }
        OMQC_ASSIGN_OR_RETURN(
            StateSetId child,
            InternChild(word_buf_.data(), e, out_frontier, done));
        children.push_back(child);
      }
      if (children.empty()) {
        // Every existential obligation is already universal: the one
        // (maximal) child is the universal set itself.
        OMQC_ASSIGN_OR_RETURN(
            StateSetId child,
            InternChild(word_buf_.data(), -1, out_frontier, done));
        children.push_back(child);
      }
      std::sort(children.begin(), children.end());
      children.erase(std::unique(children.begin(), children.end()),
                     children.end());
      groups.push_back(std::move(children));
    }
    // Assign after the interning above: groups_ may have reallocated.
    groups_[id] = std::move(groups);
    // Eager resolution: a group whose children are all already productive
    // fires now. Otherwise reverse edges are recorded from each not-yet-
    // productive child, so the cascade re-checks this set exactly when one
    // of those children turns productive — O(edges) total, never a rescan
    // of every unresolved set. Edges from already-productive children are
    // pointless (a set is marked at most once) and skipped.
    if (HasProductiveGroup(id)) {
      if (MarkProductive(id)) done = true;
      return Status::OK();
    }
    for (const std::vector<StateSetId>& children : groups_[id]) {
      for (StateSetId c : children) {
        if ((status_[c] & kProductive) == 0) {
          parents_[c].push_back(id);
          ++parent_edges_;
        }
      }
    }
    return Status::OK();
  }

  /// True iff some child group of `id` is entirely productive.
  bool HasProductiveGroup(StateSetId id) const {
    for (const std::vector<StateSetId>& children : groups_[id]) {
      bool all = true;
      for (StateSetId c : children) {
        if ((status_[c] & kProductive) == 0) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  Status Cascade(bool& done);
  Status ExpandBatchSerial(const std::vector<StateSetId>& batch,
                           std::vector<StateSetId>& out_frontier, bool& done);
  Status ExpandBatchParallel(ThreadPool& pool,
                             const std::vector<StateSetId>& batch,
                             std::vector<StateSetId>& out_frontier,
                             bool& done);

  /// Accounts arena growth against the governor's memory budget.
  Status ChargeArenaGrowth() {
    if (options_.governor == nullptr) return Status::OK();
    const size_t now = arena_.MemoryBytes() +
                       status_.capacity() * sizeof(uint8_t) +
                       parent_edges_ * sizeof(StateSetId);
    if (now <= charged_bytes_) return Status::OK();
    const size_t delta = now - charged_bytes_;
    charged_bytes_ = now;
    return options_.governor->ChargeBytes(delta);
  }

  const Twapa& automaton_;
  const EmptinessOptions& options_;
  StateSetArena arena_;
  Antichain antichain_;
  std::vector<uint8_t> status_;  ///< per StateSetId, kProductive flag
  /// Per set, the alternatives for becoming productive: each group is the
  /// (maximal) children of one disjunct and fires when all are productive.
  std::vector<std::vector<std::vector<StateSetId>>> groups_;
  /// Reverse dependencies: parents_[c] lists the expanded sets that
  /// reference c in some child group and were not resolvable when the
  /// edge was recorded. Duplicates across groups are possible and
  /// harmless (HasProductiveGroup is idempotent).
  std::vector<std::vector<StateSetId>> parents_;
  /// Freshly productive sets whose parents the cascade has yet to
  /// re-check.
  std::vector<StateSetId> pending_queue_;
  std::vector<std::unique_ptr<TransitionOracle>> oracles_;
  std::vector<uint64_t> word_buf_;  ///< scratch: one set of words
  StateSetId init_id_ = 0;
  size_t charged_bytes_ = 0;
  size_t parent_edges_ = 0;  ///< total reverse edges, for memory charging
  EmptinessStats stats_;
};

Status AntichainEngine::ExpandBatchSerial(
    const std::vector<StateSetId>& batch,
    std::vector<StateSetId>& out_frontier, bool& done) {
  std::vector<int> members;
  for (StateSetId id : batch) {
    if (done) return Status::OK();
    if (options_.governor != nullptr) {
      OMQC_RETURN_IF_ERROR(options_.governor->Check());
    }
    // Re-check: merging earlier batch items may have grown the antichain
    // past this set — subsumed sets are never expanded.
    if ((status_[id] & kProductive) != 0) continue;
    if (antichain_.SubsumedBy(id)) {
      ++stats_.states_subsumed;
      if (MarkProductive(id)) done = true;
      continue;
    }
    members.clear();
    arena_.ForEachState(id, [&](int q) { members.push_back(q); });
    OMQC_ASSIGN_OR_RETURN(
        Expansion expansion,
        ExpandSet(automaton_, members, *oracles_[0], options_));
    OMQC_RETURN_IF_ERROR(
        MergeExpansion(id, std::move(expansion), out_frontier, done));
  }
  return Status::OK();
}

Status AntichainEngine::ExpandBatchParallel(
    ThreadPool& pool, const std::vector<StateSetId>& batch,
    std::vector<StateSetId>& out_frontier, bool& done) {
  const size_t num_chunks =
      std::min(batch.size(), oracles_.size());
  std::vector<std::optional<Result<Expansion>>> results(batch.size());
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    pool.Submit([this, &batch, &results, chunk, num_chunks] {
      // Workers only READ the arena and engine state (no interning
      // happens during a batch) and write disjoint result slots; each
      // chunk owns its oracle exclusively.
      TransitionOracle& oracle = *oracles_[chunk];
      std::vector<int> members;
      for (size_t i = chunk; i < batch.size(); i += num_chunks) {
        if (options_.governor != nullptr) {
          Status probe = options_.governor->Check();
          if (!probe.ok()) {
            results[i] = Result<Expansion>(std::move(probe));
            continue;  // sticky trip: remaining slots fail fast too
          }
        }
        members.clear();
        arena_.ForEachState(batch[i], [&](int q) { members.push_back(q); });
        results[i] =
            ExpandSet(automaton_, members, oracle, options_);
      }
    });
  }
  pool.Wait();
  // Deterministic merge in batch order; the first error (identical for
  // every thread count, trips aside) wins.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!results[i].has_value()) {
      return Status::Internal("expansion worker dropped a result slot");
    }
    if (!results[i]->ok()) return results[i]->status();
    if ((status_[batch[i]] & kProductive) != 0) continue;
    if (antichain_.SubsumedBy(batch[i])) {
      // The expansion already ran, but the verdict path matches the
      // serial engine: subsumption makes the set productive either way.
      ++stats_.states_subsumed;
      if (MarkProductive(batch[i])) done = true;
      continue;
    }
    OMQC_RETURN_IF_ERROR(MergeExpansion(batch[i], std::move(**results[i]),
                                        out_frontier, done));
    if (done) return Status::OK();
  }
  return Status::OK();
}

Status AntichainEngine::Cascade(bool& done) {
  // Pops a freshly productive set and re-checks its recorded parents;
  // MarkProductive re-queues, so the full transitive closure drains in
  // one call. Serial on purpose: this is pure bookkeeping (word-sized
  // loads and subset-of-status checks), cheap next to expansion.
  size_t pops = 0;
  while (!pending_queue_.empty() && !done) {
    const StateSetId id = pending_queue_.back();
    pending_queue_.pop_back();
    if (options_.governor != nullptr && pops++ % kGovernorStride == 0) {
      OMQC_RETURN_IF_ERROR(options_.governor->Check());
    }
    for (StateSetId parent : parents_[id]) {
      if ((status_[parent] & kProductive) != 0) continue;
      if (HasProductiveGroup(parent)) {
        if (MarkProductive(parent)) {
          done = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Result<bool> AntichainEngine::Run() {
  const size_t num_threads = std::max<size_t>(options_.num_threads, 1);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    oracles_.push_back(std::make_unique<TransitionOracle>(
        &automaton_, options_.max_disjuncts));
  }

  init_id_ = arena_.InternSingleton(automaton_.initial_state);
  status_.assign(arena_.size(), 0);
  groups_.resize(arena_.size());
  parents_.resize(arena_.size());

  bool done = false;  // latched when the initial set is proven productive
  std::vector<StateSetId> frontier{init_id_};
  std::vector<StateSetId> batch;
  std::vector<StateSetId> next_frontier;
  while (!frontier.empty() && !done) {
    ++stats_.emptiness_rounds;
    // Filter: subsumed or already-productive sets are never expanded.
    batch.clear();
    for (StateSetId id : frontier) {
      if ((status_[id] & kProductive) != 0) continue;
      if (antichain_.SubsumedBy(id)) {
        ++stats_.states_subsumed;
        if (MarkProductive(id)) done = true;
        continue;
      }
      batch.push_back(id);
    }
    frontier.clear();
    if (!done && !batch.empty()) {
      next_frontier.clear();
      if (pool.has_value()) {
        OMQC_RETURN_IF_ERROR(
            ExpandBatchParallel(*pool, batch, next_frontier, done));
      } else {
        OMQC_RETURN_IF_ERROR(
            ExpandBatchSerial(batch, next_frontier, done));
      }
      frontier.swap(next_frontier);
      OMQC_RETURN_IF_ERROR(ChargeArenaGrowth());
    }
    // Drain the cascade: every set that turned productive during this
    // round re-checks exactly its recorded parents (MergeExpansion
    // resolves already-fireable groups eagerly, so only fresh marks can
    // unlock expanded sets).
    if (!done && !pending_queue_.empty()) {
      OMQC_RETURN_IF_ERROR(Cascade(done));
    }
  }
  return (status_[init_id_] & kProductive) == 0;
}

}  // namespace

Result<bool> DownwardEmptiness(const Twapa& automaton,
                               const EmptinessOptions& options) {
  if (options.engine == EmptinessEngine::kReference) {
    DownwardOptions reference;
    reference.max_states = options.max_states;
    reference.max_disjuncts = options.max_disjuncts;
    reference.max_branching = options.max_branching;
    reference.governor = options.governor;
    Result<bool> verdict = DownwardIsEmpty(automaton, reference);
    if (options.stats != nullptr) *options.stats = EmptinessStats{};
    return verdict;
  }
  if (automaton.mode != AcceptanceMode::kFiniteRuns) {
    return Status::Unsupported(
        "the antichain engine targets finite-runs (all-priorities-odd) "
        "automata");
  }
  AntichainEngine engine(automaton, options);
  Result<bool> verdict = engine.Run();
  if (options.stats != nullptr) *options.stats = engine.Stats();
  return verdict;
}

}  // namespace omqc
