#include "automata/twapa.h"

#include <optional>
#include <set>
#include <string>

#include "base/governor.h"
#include "base/string_util.h"

namespace omqc {

LabeledTree LabeledTree::Leaf(int label) {
  LabeledTree tree;
  tree.nodes.push_back(Node{label, -1, {}});
  return tree;
}

int LabeledTree::AddChild(int parent, int label) {
  int index = static_cast<int>(nodes.size());
  nodes.push_back(Node{label, parent, {}});
  nodes[static_cast<size_t>(parent)].children.push_back(index);
  return index;
}

namespace {

std::string EncodeSubtree(const LabeledTree& tree, int node) {
  std::string out = StrCat(tree.nodes[static_cast<size_t>(node)].label);
  out += "(";
  for (int c : tree.nodes[static_cast<size_t>(node)].children) {
    out += EncodeSubtree(tree, c);
    out += ",";
  }
  out += ")";
  return out;
}

}  // namespace

std::string LabeledTree::ToString() const {
  if (nodes.empty()) return "()";
  return EncodeSubtree(*this, root());
}

bool Accepts(const Twapa& automaton, const LabeledTree& tree) {
  const size_t n = tree.nodes.size();
  const size_t s = static_cast<size_t>(automaton.num_states);
  if (n == 0) return false;

  // Memoize δ per (state, label of node) lazily.
  std::vector<std::vector<std::optional<Formula>>> delta_cache(
      s, std::vector<std::optional<Formula>>(n));
  auto delta_at = [&](size_t state, size_t node) -> const Formula& {
    std::optional<Formula>& slot = delta_cache[state][node];
    if (!slot.has_value()) {
      slot = automaton.delta(static_cast<int>(state),
                             tree.nodes[node].label);
    }
    return *slot;
  };

  const bool least = automaton.mode == AcceptanceMode::kFiniteRuns;
  // winning[node * s + state]
  std::vector<char> winning(n * s, least ? 0 : 1);
  auto holds = [&](size_t node, int state) {
    return winning[node * s + static_cast<size_t>(state)] != 0;
  };

  auto valuation_at = [&](size_t node) {
    return [&, node](const TransitionAtom& atom) -> bool {
      const LabeledTree::Node& tn = tree.nodes[node];
      switch (atom.move) {
        case Move::kStay:
          return holds(node, atom.state);
        case Move::kUp:
          if (tn.parent < 0) return atom.universal;  // [−1] vacuous, ⟨−1⟩ fails
          return holds(static_cast<size_t>(tn.parent), atom.state);
        case Move::kChild:
          if (atom.universal) {
            for (int c : tn.children) {
              if (!holds(static_cast<size_t>(c), atom.state)) return false;
            }
            return true;
          }
          for (int c : tn.children) {
            if (holds(static_cast<size_t>(c), atom.state)) return true;
          }
          return false;
      }
      return false;
    };
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t node = 0; node < n; ++node) {
      auto valuation = valuation_at(node);
      for (size_t state = 0; state < s; ++state) {
        bool value = delta_at(state, node).Evaluate(valuation);
        char encoded = value ? 1 : 0;
        char& slot = winning[node * s + state];
        if (least) {
          if (encoded && !slot) {
            slot = 1;
            changed = true;
          }
        } else {
          if (!encoded && slot) {
            slot = 0;
            changed = true;
          }
        }
      }
    }
  }
  return holds(static_cast<size_t>(tree.root()), automaton.initial_state);
}

Twapa Complement(const Twapa& automaton) {
  Twapa out;
  out.num_states = automaton.num_states;
  out.num_labels = automaton.num_labels;
  out.initial_state = automaton.initial_state;
  out.mode = automaton.mode == AcceptanceMode::kFiniteRuns
                 ? AcceptanceMode::kSafety
                 : AcceptanceMode::kFiniteRuns;
  std::function<Formula(int, int)> inner = automaton.delta;
  out.delta = [inner](int state, int label) {
    return inner(state, label).Dual();
  };
  return out;
}

namespace {

Formula ShiftStates(const Formula& f, int offset) {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return Formula::True();
    case Formula::Kind::kFalse:
      return Formula::False();
    case Formula::Kind::kAtom: {
      TransitionAtom atom = f.atom();
      atom.state += offset;
      return Formula::Atom(atom);
    }
    case Formula::Kind::kAnd:
      return Formula::And(ShiftStates(f.left(), offset),
                          ShiftStates(f.right(), offset));
    case Formula::Kind::kOr:
      return Formula::Or(ShiftStates(f.left(), offset),
                         ShiftStates(f.right(), offset));
  }
  return Formula::False();
}

}  // namespace

Result<Twapa> Intersect(const Twapa& a, const Twapa& b) {
  if (a.num_labels != b.num_labels) {
    return Status::InvalidArgument("intersection needs a common alphabet");
  }
  if (a.mode != b.mode) {
    return Status::Unsupported(
        "intersection of mixed acceptance modes is not supported; "
        "complement first or intersect same-mode automata");
  }
  Twapa out;
  out.num_labels = a.num_labels;
  out.mode = a.mode;
  out.num_states = 1 + a.num_states + b.num_states;
  out.initial_state = 0;
  const int off_a = 1;
  const int off_b = 1 + a.num_states;
  std::function<Formula(int, int)> da = a.delta;
  std::function<Formula(int, int)> db = b.delta;
  int init_a = a.initial_state, init_b = b.initial_state;
  out.delta = [da, db, off_a, off_b, init_a, init_b](int state,
                                                     int label) -> Formula {
    if (state == 0) {
      return Formula::And(ShiftStates(da(init_a, label), off_a),
                          ShiftStates(db(init_b, label), off_b));
    }
    if (state < off_b) return ShiftStates(da(state - off_a, label), off_a);
    return ShiftStates(db(state - off_b, label), off_b);
  };
  return out;
}

std::optional<LabeledTree> FindAcceptedTree(const Twapa& automaton,
                                            int max_nodes, int max_branching,
                                            ResourceGovernor* governor) {
  // Breadth-first tree growing with canonical-form deduplication.
  std::vector<LabeledTree> frontier;
  std::set<std::string> seen;
  for (int label = 0; label < automaton.num_labels; ++label) {
    LabeledTree leaf = LabeledTree::Leaf(label);
    if (Accepts(automaton, leaf)) return leaf;
    seen.insert(leaf.ToString());
    frontier.push_back(std::move(leaf));
  }
  while (!frontier.empty()) {
    std::vector<LabeledTree> next;
    for (const LabeledTree& tree : frontier) {
      if (governor != nullptr && !governor->Check().ok()) {
        return std::nullopt;  // cut short; caller checks tripped()
      }
      if (static_cast<int>(tree.nodes.size()) >= max_nodes) continue;
      for (size_t node = 0; node < tree.nodes.size(); ++node) {
        if (static_cast<int>(tree.nodes[node].children.size()) >=
            max_branching) {
          continue;
        }
        for (int label = 0; label < automaton.num_labels; ++label) {
          LabeledTree extended = tree;
          extended.AddChild(static_cast<int>(node), label);
          std::string key = extended.ToString();
          if (!seen.insert(std::move(key)).second) continue;
          if (Accepts(automaton, extended)) return extended;
          next.push_back(std::move(extended));
        }
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

namespace {

std::vector<char> ProductiveStates(const Nta& automaton) {
  std::vector<char> productive(static_cast<size_t>(automaton.num_states), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nta::Rule& rule : automaton.rules) {
      if (productive[static_cast<size_t>(rule.state)]) continue;
      bool all = true;
      for (int c : rule.child_states) {
        if (!productive[static_cast<size_t>(c)]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[static_cast<size_t>(rule.state)] = 1;
        changed = true;
      }
    }
  }
  return productive;
}

}  // namespace

bool IsEmpty(const Nta& automaton) {
  std::vector<char> productive = ProductiveStates(automaton);
  return !productive[static_cast<size_t>(automaton.initial_state)];
}

bool Accepts(const Nta& automaton, const LabeledTree& tree) {
  // memo[node][state]: -1 unknown, 0 no, 1 yes.
  std::vector<std::vector<int>> memo(
      tree.nodes.size(),
      std::vector<int>(static_cast<size_t>(automaton.num_states), -1));
  std::function<bool(int, int)> run = [&](int node, int state) -> bool {
    int& slot = memo[static_cast<size_t>(node)][static_cast<size_t>(state)];
    if (slot >= 0) return slot == 1;
    slot = 0;
    const LabeledTree::Node& tn = tree.nodes[static_cast<size_t>(node)];
    for (const Nta::Rule& rule : automaton.rules) {
      if (rule.state != state || rule.label != tn.label) continue;
      if (rule.child_states.size() != tn.children.size()) continue;
      bool all = true;
      for (size_t i = 0; i < tn.children.size(); ++i) {
        if (!run(tn.children[i], rule.child_states[i])) {
          all = false;
          break;
        }
      }
      if (all) {
        slot = 1;
        return true;
      }
    }
    return false;
  };
  if (tree.nodes.empty()) return false;
  return run(tree.root(), automaton.initial_state);
}

bool IsInfinite(const Nta& automaton) {
  std::vector<char> productive = ProductiveStates(automaton);
  if (!productive[static_cast<size_t>(automaton.initial_state)]) {
    return false;  // empty language
  }
  // Useful = reachable through rules whose children are all productive.
  std::vector<char> useful(static_cast<size_t>(automaton.num_states), 0);
  std::vector<int> stack{automaton.initial_state};
  useful[static_cast<size_t>(automaton.initial_state)] = 1;
  std::vector<std::vector<int>> edges(
      static_cast<size_t>(automaton.num_states));
  for (const Nta::Rule& rule : automaton.rules) {
    bool all = true;
    for (int c : rule.child_states) {
      if (!productive[static_cast<size_t>(c)]) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    for (int c : rule.child_states) {
      edges[static_cast<size_t>(rule.state)].push_back(c);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int c : edges[static_cast<size_t>(s)]) {
      if (!useful[static_cast<size_t>(c)]) {
        useful[static_cast<size_t>(c)] = 1;
        stack.push_back(c);
      }
    }
  }
  // Infinite iff the useful subgraph has a cycle.
  std::vector<int> color(static_cast<size_t>(automaton.num_states), 0);
  std::function<bool(int)> has_cycle = [&](int s) -> bool {
    color[static_cast<size_t>(s)] = 1;
    for (int c : edges[static_cast<size_t>(s)]) {
      if (!useful[static_cast<size_t>(c)]) continue;
      if (color[static_cast<size_t>(c)] == 1) return true;
      if (color[static_cast<size_t>(c)] == 0 && has_cycle(c)) return true;
    }
    color[static_cast<size_t>(s)] = 2;
    return false;
  };
  for (int s = 0; s < automaton.num_states; ++s) {
    if (useful[static_cast<size_t>(s)] && color[static_cast<size_t>(s)] == 0 &&
        has_cycle(s)) {
      return true;
    }
  }
  return false;
}

}  // namespace omqc
