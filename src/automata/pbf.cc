#include "automata/pbf.h"

#include <algorithm>

#include "base/string_util.h"

namespace omqc {

std::string TransitionAtom::ToString() const {
  const char* dir = move == Move::kUp ? "-1" : (move == Move::kStay ? "0" : "*");
  return StrCat(universal ? "[" : "<", dir, universal ? "]" : ">", state);
}

Formula Formula::True() {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kTrue, TransitionAtom{}, nullptr, nullptr}));
}

Formula Formula::False() {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kFalse, TransitionAtom{}, nullptr, nullptr}));
}

Formula Formula::Atom(TransitionAtom atom) {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kAtom, atom, nullptr, nullptr}));
}

Formula Formula::And(Formula a, Formula b) {
  if (a.kind() == Kind::kFalse || b.kind() == Kind::kFalse) return False();
  if (a.kind() == Kind::kTrue) return b;
  if (b.kind() == Kind::kTrue) return a;
  return Formula(std::make_shared<const Node>(
      Node{Kind::kAnd, TransitionAtom{},
           std::make_shared<const Formula>(std::move(a)),
           std::make_shared<const Formula>(std::move(b))}));
}

Formula Formula::Or(Formula a, Formula b) {
  if (a.kind() == Kind::kTrue || b.kind() == Kind::kTrue) return True();
  if (a.kind() == Kind::kFalse) return b;
  if (b.kind() == Kind::kFalse) return a;
  return Formula(std::make_shared<const Node>(
      Node{Kind::kOr, TransitionAtom{},
           std::make_shared<const Formula>(std::move(a)),
           std::make_shared<const Formula>(std::move(b))}));
}

Formula Formula::AndAll(const std::vector<Formula>& fs) {
  Formula out = True();
  for (const Formula& f : fs) out = And(out, f);
  return out;
}

Formula Formula::OrAll(const std::vector<Formula>& fs) {
  Formula out = False();
  for (const Formula& f : fs) out = Or(out, f);
  return out;
}

bool Formula::Evaluate(
    const std::function<bool(const TransitionAtom&)>& valuation) const {
  switch (kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return valuation(atom());
    case Kind::kAnd:
      return left().Evaluate(valuation) && right().Evaluate(valuation);
    case Kind::kOr:
      return left().Evaluate(valuation) || right().Evaluate(valuation);
  }
  return false;
}

Formula Formula::Dual() const {
  switch (kind()) {
    case Kind::kTrue:
      return False();
    case Kind::kFalse:
      return True();
    case Kind::kAtom: {
      TransitionAtom dual_atom = atom();
      dual_atom.universal = !dual_atom.universal;
      return Atom(dual_atom);
    }
    case Kind::kAnd:
      return Or(left().Dual(), right().Dual());
    case Kind::kOr:
      return And(left().Dual(), right().Dual());
  }
  return False();
}

void Formula::CollectAtoms(std::vector<TransitionAtom>& out) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      out.push_back(atom());
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left().CollectAtoms(out);
      right().CollectAtoms(out);
      return;
  }
}

std::string Formula::ToString() const {
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom().ToString();
    case Kind::kAnd:
      return StrCat("(", left().ToString(), " & ", right().ToString(), ")");
    case Kind::kOr:
      return StrCat("(", left().ToString(), " | ", right().ToString(), ")");
  }
  return "?";
}

Formula Diamond(Move move, int state) {
  return Formula::Atom(TransitionAtom{move, /*universal=*/false, state});
}

Formula Box(Move move, int state) {
  return Formula::Atom(TransitionAtom{move, /*universal=*/true, state});
}

bool DisjunctSubsumes(const DownwardDisjunct& a, const DownwardDisjunct& b) {
  return a.existential.size() <= b.existential.size() &&
         a.universal.size() <= b.universal.size() &&
         std::includes(b.existential.begin(), b.existential.end(),
                       a.existential.begin(), a.existential.end()) &&
         std::includes(b.universal.begin(), b.universal.end(),
                       a.universal.begin(), a.universal.end());
}

void AddMinimized(std::vector<DownwardDisjunct>& out, DownwardDisjunct d) {
  size_t keep = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (DisjunctSubsumes(out[i], d)) return;  // already covered
    if (DisjunctSubsumes(d, out[i])) continue;  // evict the subsumed
    if (keep != i) out[keep] = std::move(out[i]);  // no self-move
    ++keep;
  }
  out.resize(keep);
  out.push_back(std::move(d));
}

namespace {

/// Merges two sorted duplicate-free lists into a sorted duplicate-free
/// union.
std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

Result<const std::vector<DownwardDisjunct>*> DownwardDnfCache::MinimalModels(
    const Formula& f, size_t max_disjuncts) {
  auto it = memo_.find(f.id());
  if (it != memo_.end()) {
    ++hits_;
    return &it->second.models;
  }
  ++misses_;
  std::vector<DownwardDisjunct> models;
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      models.push_back(DownwardDisjunct{});
      break;
    case Formula::Kind::kFalse:
      break;
    case Formula::Kind::kAtom: {
      const TransitionAtom& atom = f.atom();
      if (atom.move != Move::kChild) {
        return Status::Unsupported(
            "only downward (child-moving) automata have obligation DNFs");
      }
      DownwardDisjunct d;
      (atom.universal ? d.universal : d.existential).push_back(atom.state);
      models.push_back(std::move(d));
      break;
    }
    case Formula::Kind::kAnd: {
      OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* left,
                            MinimalModels(f.left(), max_disjuncts));
      OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* right,
                            MinimalModels(f.right(), max_disjuncts));
      for (const DownwardDisjunct& a : *left) {
        for (const DownwardDisjunct& b : *right) {
          AddMinimized(models,
                       DownwardDisjunct{
                           SortedUnion(a.existential, b.existential),
                           SortedUnion(a.universal, b.universal)});
          if (models.size() > max_disjuncts) {
            return Status::ResourceExhausted("DNF blow-up");
          }
        }
      }
      break;
    }
    case Formula::Kind::kOr: {
      OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* left,
                            MinimalModels(f.left(), max_disjuncts));
      OMQC_ASSIGN_OR_RETURN(const std::vector<DownwardDisjunct>* right,
                            MinimalModels(f.right(), max_disjuncts));
      models = *left;
      for (const DownwardDisjunct& b : *right) {
        AddMinimized(models, b);
        if (models.size() > max_disjuncts) {
          return Status::ResourceExhausted("DNF blow-up");
        }
      }
      break;
    }
  }
  // Note: recursive MinimalModels calls above may have rehashed memo_;
  // unordered_map references stay valid, but insert AFTER the recursion.
  auto [slot, inserted] =
      memo_.emplace(f.id(), Entry{f, std::move(models)});
  (void)inserted;
  return &slot->second.models;
}

}  // namespace omqc
