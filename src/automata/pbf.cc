#include "automata/pbf.h"

#include "base/string_util.h"

namespace omqc {

std::string TransitionAtom::ToString() const {
  const char* dir = move == Move::kUp ? "-1" : (move == Move::kStay ? "0" : "*");
  return StrCat(universal ? "[" : "<", dir, universal ? "]" : ">", state);
}

Formula Formula::True() {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kTrue, TransitionAtom{}, nullptr, nullptr}));
}

Formula Formula::False() {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kFalse, TransitionAtom{}, nullptr, nullptr}));
}

Formula Formula::Atom(TransitionAtom atom) {
  return Formula(std::make_shared<const Node>(
      Node{Kind::kAtom, atom, nullptr, nullptr}));
}

Formula Formula::And(Formula a, Formula b) {
  if (a.kind() == Kind::kFalse || b.kind() == Kind::kFalse) return False();
  if (a.kind() == Kind::kTrue) return b;
  if (b.kind() == Kind::kTrue) return a;
  return Formula(std::make_shared<const Node>(
      Node{Kind::kAnd, TransitionAtom{},
           std::make_shared<const Formula>(std::move(a)),
           std::make_shared<const Formula>(std::move(b))}));
}

Formula Formula::Or(Formula a, Formula b) {
  if (a.kind() == Kind::kTrue || b.kind() == Kind::kTrue) return True();
  if (a.kind() == Kind::kFalse) return b;
  if (b.kind() == Kind::kFalse) return a;
  return Formula(std::make_shared<const Node>(
      Node{Kind::kOr, TransitionAtom{},
           std::make_shared<const Formula>(std::move(a)),
           std::make_shared<const Formula>(std::move(b))}));
}

Formula Formula::AndAll(const std::vector<Formula>& fs) {
  Formula out = True();
  for (const Formula& f : fs) out = And(out, f);
  return out;
}

Formula Formula::OrAll(const std::vector<Formula>& fs) {
  Formula out = False();
  for (const Formula& f : fs) out = Or(out, f);
  return out;
}

bool Formula::Evaluate(
    const std::function<bool(const TransitionAtom&)>& valuation) const {
  switch (kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return valuation(atom());
    case Kind::kAnd:
      return left().Evaluate(valuation) && right().Evaluate(valuation);
    case Kind::kOr:
      return left().Evaluate(valuation) || right().Evaluate(valuation);
  }
  return false;
}

Formula Formula::Dual() const {
  switch (kind()) {
    case Kind::kTrue:
      return False();
    case Kind::kFalse:
      return True();
    case Kind::kAtom: {
      TransitionAtom dual_atom = atom();
      dual_atom.universal = !dual_atom.universal;
      return Atom(dual_atom);
    }
    case Kind::kAnd:
      return Or(left().Dual(), right().Dual());
    case Kind::kOr:
      return And(left().Dual(), right().Dual());
  }
  return False();
}

void Formula::CollectAtoms(std::vector<TransitionAtom>& out) const {
  switch (kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      out.push_back(atom());
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left().CollectAtoms(out);
      right().CollectAtoms(out);
      return;
  }
}

std::string Formula::ToString() const {
  switch (kind()) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom().ToString();
    case Kind::kAnd:
      return StrCat("(", left().ToString(), " & ", right().ToString(), ")");
    case Kind::kOr:
      return StrCat("(", left().ToString(), " | ", right().ToString(), ")");
  }
  return "?";
}

Formula Diamond(Move move, int state) {
  return Formula::Atom(TransitionAtom{move, /*universal=*/false, state});
}

Formula Box(Move move, int state) {
  return Formula::Atom(TransitionAtom{move, /*universal=*/true, state});
}

}  // namespace omqc
