// On-the-fly emptiness for downward 2WAPAs: the antichain-pruned,
// memoized, optionally parallel production engine behind the guarded
// containment pipeline (Prop. 21/25 reductions).
//
// The reference path (automata/downward.h) materializes the FULL subset
// construction — every reachable obligation set, every rule — and only
// then runs NTA emptiness. This engine decides the same question without
// building the NTA, by computing the least fixpoint of "productive"
// obligation sets directly:
//
//   Prod(S) ⟺ ∃ label ℓ, ∃ disjunct d of DNF(⋀_{q∈S} δ(q,ℓ)):
//               ex(d) = ∅  (a leaf satisfies d — universal obligations
//                           are vacuous with no children)
//               or ∀ e ∈ ex(d): Prod(univ(d) ∪ {e}),
//
// and L(A) = ∅ iff ¬Prod({s0}). Three structural facts make it fast:
//
//  1. Monotonicity. S ⊆ T implies Prod(T) ⟹ Prod(S): fewer obligations
//     are easier to satisfy. The productive family is downward closed, so
//     it is represented by the antichain of its ⊆-maximal members
//     (automata/stateset.h): a candidate subsumed by an antichain member
//     is productive WITHOUT expansion, and disjuncts/children that are
//     supersets of others are dropped before they spawn work.
//  2. Interning. Obligation sets are hash-consed flat bitsets named by
//     dense ids; the productivity memo is a flat byte array indexed by
//     id, and subset tests are word ops (vs. the reference's std::set
//     copies and lexicographic map lookups).
//  3. Memoization. δ(q,ℓ) minimal models are computed once per
//     (state,label) and cached (automata/pbf.h DownwardDnfCache); set-
//     level DNFs are ⊆-minimized products of the per-state models.
//
// Productivity propagates through a reverse-dependency worklist: every
// interned set records which parents reference it in a child group, and a
// freshly productive set re-checks exactly those parents — O(edges)
// total, never a rescan of all unresolved sets.
//
// Parallel mode (num_threads > 1) runs expansion batches on a ThreadPool
// with the same contract as parallel containment: the verdict is
// identical to the serial engine for every thread count (the fixpoint is
// exact; only wall-clock and stats ordering vary), and the engine
// early-exits as soon as the initial set is proven productive. The
// cascade itself stays serial — it is bookkeeping-cheap next to
// expansion. Governor probes follow the DESIGN.md placement rules: once
// per expanded obligation set, every 64 label expansions within a set,
// and every 64 cascade pops.

#ifndef OMQC_AUTOMATA_EMPTINESS_H_
#define OMQC_AUTOMATA_EMPTINESS_H_

#include <cstddef>

#include "automata/twapa.h"
#include "base/status.h"

namespace omqc {

class ResourceGovernor;

/// Which emptiness engine DownwardEmptiness dispatches to.
enum class EmptinessEngine {
  /// The on-the-fly antichain engine (this header's file comment).
  kAntichain,
  /// The exhaustive subset construction + NTA emptiness of
  /// automata/downward.h, kept as the reference oracle. Ignores
  /// num_threads (the reference is serial by construction).
  kReference,
};

/// Compile-time default engine. Sanitizer presets build with
/// -DOMQC_EMPTINESS_DEFAULT_REFERENCE (mirroring the OMQC_ENABLE_SIMD=OFF
/// convention) so ASan/TSan jobs exercise the reference path by default
/// while the agreement tests pin each engine explicitly.
#ifdef OMQC_EMPTINESS_DEFAULT_REFERENCE
inline constexpr EmptinessEngine kDefaultEmptinessEngine =
    EmptinessEngine::kReference;
#else
inline constexpr EmptinessEngine kDefaultEmptinessEngine =
    EmptinessEngine::kAntichain;
#endif

/// Observability counters of one emptiness run. Aggregated into
/// EngineStats (core/engine_stats.h); plain tallies, no synchronization —
/// the parallel engine merges worker-local copies under its own barrier.
struct EmptinessStats {
  size_t states_explored = 0;   ///< obligation sets expanded
  size_t states_subsumed = 0;   ///< sets proven productive by antichain
                                ///< subsumption, never expanded
  size_t antichain_size = 0;    ///< ⊆-maximal productive sets at the end
  /// Expansion rounds of the main fixpoint loop (one per frontier batch).
  size_t emptiness_rounds = 0;
  size_t dnf_cache_hits = 0;    ///< per-(state,label) minimal-model reuses
  size_t dnf_cache_misses = 0;  ///< minimal-model computations

  /// Sums tallies; antichain_size takes the max (it is a high-water
  /// snapshot, not a rate).
  void Merge(const EmptinessStats& other);
};

/// Budgets and knobs, superset of DownwardOptions so the two engines stay
/// swappable behind one call site.
struct EmptinessOptions {
  EmptinessEngine engine = kDefaultEmptinessEngine;
  /// Maximum number of distinct obligation sets (interned or, for the
  /// reference engine, NTA states).
  size_t max_states = 4096;
  /// Maximum number of ⊆-minimal DNF disjuncts per obligation set.
  size_t max_disjuncts = 4096;
  /// Branching bound: disjuncts with more existential obligations are
  /// rejected as InvalidArgument (Lemma 53 bounds branching by the state
  /// count, so pass at least that).
  int max_branching = 16;
  /// Worker threads for the antichain engine's expansion batches; <= 1
  /// runs serial. The propagation cascade is serial at every width.
  size_t num_threads = 1;
  /// Optional shared request governor (base/governor.h); a trip surfaces
  /// as its trip status. Not owned.
  ResourceGovernor* governor = nullptr;
  /// Optional stats sink, overwritten (not accumulated) on every run that
  /// gets far enough to count anything. Not owned.
  EmptinessStats* stats = nullptr;
};

/// Exact emptiness of a downward finite-runs 2WAPA (within budgets):
/// true iff L(automaton) = ∅. Verdicts are identical across engines and
/// thread counts. Returns Unsupported for up/stay moves or safety
/// acceptance, ResourceExhausted when a budget is hit, or the governor's
/// trip status.
Result<bool> DownwardEmptiness(const Twapa& automaton,
                               const EmptinessOptions& options =
                                   EmptinessOptions());

}  // namespace omqc

#endif  // OMQC_AUTOMATA_EMPTINESS_H_
