// Emptiness for downward 2WAPAs via alternating → nondeterministic
// conversion (the finite-tree instance of Vardi's construction).
//
// A 2WAPA is *downward* when every transition atom moves to children
// (Move::kChild) — the consistency and query automata of the Sec. 5 toy
// pipeline are of this shape. For downward automata with finite-runs
// acceptance, emptiness reduces exactly to NTA emptiness through a subset
// construction: an NTA state is the set of obligations pending at a node,
// and each DNF disjunct of the conjoined transition formulas yields a
// rule that sends every existential obligation to its own child and
// copies the universal obligations everywhere.
//
// The conversion is witness-preserving: L(nta) ⊆ L(twapa), and
// L(nta) = ∅ iff L(twapa) = ∅ (any accepting run can be normalized into
// the spread-out shape). It is exponential in the state count — the
// paper's Prop. 25 pays the same price — so the API carries budgets.

#ifndef OMQC_AUTOMATA_DOWNWARD_H_
#define OMQC_AUTOMATA_DOWNWARD_H_

#include "automata/twapa.h"
#include "base/status.h"

namespace omqc {

class ResourceGovernor;

/// Budgets for the subset construction.
struct DownwardOptions {
  /// Maximum number of reachable obligation sets (NTA states).
  size_t max_states = 4096;
  /// Maximum number of DNF disjuncts per conjoined transition formula.
  size_t max_disjuncts = 4096;
  /// Branching bound of the produced rules (existential obligations
  /// beyond this are rejected as InvalidArgument — the paper's Lemma 53
  /// bounds branching by the state count, so pass at least that).
  int max_branching = 16;
  /// Optional shared request governor (base/governor.h), checked once per
  /// worklist item and per label expansion; a trip surfaces as its trip
  /// status (kDeadlineExceeded / kCancelled / kResourceExhausted) from
  /// DownwardToNta/DownwardIsEmpty. Not owned.
  ResourceGovernor* governor = nullptr;
};

/// Converts a downward finite-runs 2WAPA into an NTA with
/// L(nta) non-empty iff L(twapa) non-empty. Returns Unsupported when the
/// automaton uses up/stay moves or safety acceptance, ResourceExhausted
/// when a budget is hit.
Result<Nta> DownwardToNta(const Twapa& automaton,
                          const DownwardOptions& options = DownwardOptions());

/// Exact emptiness of a downward finite-runs 2WAPA (within budgets).
/// Note: only *emptiness* transfers through the normalization; the
/// infinity problem of Sec. 7.2 needs the language-equal conversion and
/// is provided at the NTA level (IsInfinite) for directly constructed
/// automata.
Result<bool> DownwardIsEmpty(const Twapa& automaton,
                             const DownwardOptions& options =
                                 DownwardOptions());

}  // namespace omqc

#endif  // OMQC_AUTOMATA_DOWNWARD_H_
