// Quickstart: parse an ontology-mediated query, evaluate it, and decide a
// containment — the three core operations of the library.
//
//   $ ./examples/quickstart
//
// The scenario: a tiny staff ontology. "Everyone who supervises
// someone is a manager; managers are employees" — and we ask whether the
// query "supervisors of engineers" is contained in "employees".

#include <cstdio>

#include "core/containment.h"
#include "core/eval.h"
#include "tgd/parser.h"

using namespace omqc;

int main() {
  // 1. Parse a program: an ontology (tgds), queries and data in one text.
  auto program = ParseProgram(R"(
    % Ontology: supervision implies management implies employment.
    Supervises(X,Y) -> Manager(X).
    Manager(X) -> Employee(X).
    % Every employee has a (possibly unknown) department.
    Employee(X) -> WorksIn(X,D).

    % Two queries over the data schema {Supervises, Engineer}.
    SupervisorsOfEngineers(X) :- Supervises(X,Y), Engineer(Y).
    Employees(X) :- Employee(X).

    % Data.
    Supervises(ada, grace).
    Engineer(grace).
    Engineer(edsger).
  )");
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  Schema data_schema;
  data_schema.Add(Predicate::Get("Supervises", 2));
  data_schema.Add(Predicate::Get("Engineer", 1));

  Omq supervisors{data_schema, program->tgds,
                  program->QueriesNamed("SupervisorsOfEngineers")
                      .disjuncts.front()};
  Omq employees{data_schema, program->tgds,
                program->QueriesNamed("Employees").disjuncts.front()};

  // 2. Evaluate: certain answers over the parsed database.
  auto answers = EvalAll(supervisors, program->facts);
  if (!answers.ok()) {
    std::printf("evaluation error: %s\n",
                answers.status().ToString().c_str());
    return 1;
  }
  std::printf("supervisors of engineers:");
  for (const auto& tuple : *answers) {
    std::printf(" %s", tuple[0].ToString().c_str());
  }
  std::printf("\n");

  // 3. Containment: is every supervisor-of-an-engineer always an
  // employee, on every possible database?
  auto contained = CheckContainment(supervisors, employees);
  if (!contained.ok()) {
    std::printf("containment error: %s\n",
                contained.status().ToString().c_str());
    return 1;
  }
  std::printf("SupervisorsOfEngineers ⊆ Employees: %s\n",
              ContainmentOutcomeToString(contained->outcome));

  // The converse fails — and the engine hands us a counterexample.
  auto converse = CheckContainment(employees, supervisors);
  std::printf("Employees ⊆ SupervisorsOfEngineers: %s\n",
              ContainmentOutcomeToString(converse->outcome));
  if (converse->witness.has_value()) {
    std::printf("counterexample database:\n%s\n",
                PrettifiedCopy(converse->witness->database)
                    .ToString()
                    .c_str());
  }
  return 0;
}
