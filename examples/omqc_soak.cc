// omqc_soak — differential soak harness over the scenario factory.
//
// Usage:
//   omqc_soak [--seed=S] [--count=N] [flags]
//
// Streams factory scenarios (src/soak/scenario.h) through every engine
// configuration that claims identical verdicts — containment at threads
// 1/2/8 over a shared cache, cache-off, governed-with-random-budgets
// (trip → ungoverned retry), and a live in-process OmqServer reached over
// real TCP with the retrying client — then cross-checks all pairs plus
// the construction polarity oracle (src/soak/differential.h). A
// discrepancy is minimized (src/soak/minimize.h) and written as a
// self-contained repro file replayable with
// `omqc_cli contain <repro> Q1 Q2`.
//
// Flags:
//   --seed=S          master scenario stream (default 1). Same seed and
//                     count → bit-for-bit identical stdout.
//   --count=N         scenarios to run (default 100)
//   --server=on|off   include the live-server config (default on)
//   --governed=on|off include the governed config (default on)
//   --rewrite-budget=N  rewriting budget per config (default 120; cost
//                     is superlinear in this on walk-heavy scenarios)
//   --minimize=on|off minimize discrepancies (default on)
//   --repro-dir=PATH  where repro files land (default ".")
//   --max-repros=N    stop minimizing after N repros (default 3)
//   --persist-dir=PATH  include the persistent-cache config: containment
//                     over a TieredStore rooted at PATH, warm-reloaded
//                     (flush + close + reopen from disk) every 25
//                     scenarios so later scenarios exercise artifacts
//                     decoded from segments written by earlier ones
//   --fail-fast       exit at the first discrepancy
//   --plant-flip=CFG  test hook: flip config CFG's definite verdict (e.g.
//                     "threads1") — every scenario then fails, proving
//                     the harness catches and shrinks a verdict bug
//
// Determinism contract: stdout (scenario lines + summary) is a pure
// function of the flags. Wall-clock-dependent tallies — governed-config
// retries, client reconnects/backoffs — go to stderr only.
//
// Exit status: 0 all scenarios agreed, 1 discrepancies, 2 bad flags.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/frontend.h"
#include "server/client.h"
#include "server/server.h"
#include "soak/differential.h"
#include "soak/minimize.h"
#include "soak/scenario.h"

using namespace omqc;

namespace {

bool ParseUintFlag(const std::string& arg, const std::string& name,
                   uint64_t* out, bool* ok) {
  std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  auto value = ParseUnsignedFlagValue(name, arg.substr(prefix.size()));
  if (!value.ok()) {
    std::fprintf(stderr, "%s\n", value.status().message().c_str());
    *ok = false;
    return true;
  }
  *out = *value;
  return true;
}

bool ParseOnOffFlag(const std::string& arg, const std::string& name,
                    bool* out, bool* ok) {
  std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  std::string value = arg.substr(prefix.size());
  if (value == "on") {
    *out = true;
  } else if (value == "off") {
    *out = false;
  } else {
    std::fprintf(stderr, "%s expects on|off, got '%s'\n", name.c_str(),
                 value.c_str());
    *ok = false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t count = 100;
  uint64_t rewrite_budget = 120;
  uint64_t max_repros = 3;
  bool with_server = true;
  bool with_governed = true;
  bool minimize = true;
  bool fail_fast = false;
  std::string repro_dir = ".";
  std::string plant_flip;
  std::string persist_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool ok = true;
    if (ParseUintFlag(arg, "--seed", &seed, &ok) ||
        ParseUintFlag(arg, "--count", &count, &ok) ||
        ParseUintFlag(arg, "--rewrite-budget", &rewrite_budget, &ok) ||
        ParseUintFlag(arg, "--max-repros", &max_repros, &ok) ||
        ParseOnOffFlag(arg, "--server", &with_server, &ok) ||
        ParseOnOffFlag(arg, "--governed", &with_governed, &ok) ||
        ParseOnOffFlag(arg, "--minimize", &minimize, &ok)) {
      if (!ok) return 2;
      continue;
    }
    if (arg == "--fail-fast") {
      fail_fast = true;
      continue;
    }
    if (arg.rfind("--repro-dir=", 0) == 0) {
      repro_dir = arg.substr(12);
      continue;
    }
    if (arg.rfind("--plant-flip=", 0) == 0) {
      plant_flip = arg.substr(13);
      continue;
    }
    if (arg.rfind("--persist-dir=", 0) == 0) {
      persist_dir = arg.substr(14);
      continue;
    }
    std::fprintf(stderr,
                 "unknown flag '%s'\nusage: %s [--seed=S] [--count=N] "
                 "[--server=on|off] [--governed=on|off] "
                 "[--rewrite-budget=N] [--minimize=on|off] "
                 "[--repro-dir=PATH] [--max-repros=N] [--fail-fast] "
                 "[--plant-flip=CFG] [--persist-dir=PATH]\n",
                 arg.c_str(), argv[0]);
    return 2;
  }

  // The live-server config: a real daemon on an ephemeral TCP port,
  // reached through the retrying client (soak keeps hammering it while
  // the kernel is still standing the listener up).
  std::unique_ptr<OmqServer> server;
  std::unique_ptr<OmqClient> client;
  if (with_server) {
    ServerConfig config;
    config.tenant_quota.max_concurrent = 2;  // exercise the queue path
    server = std::make_unique<OmqServer>(std::move(config));
    auto port = server->ListenAndStart(0);
    if (!port.ok()) {
      std::fprintf(stderr, "error: server start: %s\n",
                   port.status().ToString().c_str());
      return 2;
    }
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.jitter_seed = seed;
    auto connected = OmqClient::Connect("127.0.0.1", *port, policy);
    if (!connected.ok()) {
      std::fprintf(stderr, "error: client connect: %s\n",
                   connected.status().ToString().c_str());
      return 2;
    }
    client = std::make_unique<OmqClient>(std::move(*connected));
  }

  OmqCache cache;  // shared by the cached configs, across scenarios

  // Persistent-cache config: a TieredStore warm-reloaded (flush + close +
  // reopen) every kPersistReloadEvery scenarios, so the configs after a
  // reload run over artifacts decoded from disk segments rather than the
  // in-memory originals.
  constexpr uint64_t kPersistReloadEvery = 25;
  std::unique_ptr<TieredStore> persist_store;
  auto open_persist = [&]() -> bool {
    auto store = TieredStore::Open(TieredStoreConfig{{}, persist_dir});
    if (!store.ok()) {
      std::fprintf(stderr, "error: --persist-dir: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    persist_store = std::move(store).value();
    return true;
  };
  if (!persist_dir.empty() && !open_persist()) return 2;

  SplitMix64 fault_master = SplitMix64(seed).Fork(0xFA);

  uint64_t discrepancies = 0;
  uint64_t unknowns = 0;
  uint64_t repros_written = 0;
  uint64_t governed_retries = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ScenarioSpec spec = SpecForIndex(seed, i);
    Scenario scenario = MakeScenario(spec);

    if (persist_store != nullptr && i > 0 && i % kPersistReloadEvery == 0) {
      persist_store->Flush();
      persist_store.reset();  // close before reopening the same directory
      if (!open_persist()) return 2;
    }

    DifferentialOptions options;
    options.rewrite_max_queries = static_cast<size_t>(rewrite_budget);
    options.cache = &cache;
    options.persist_cache = persist_store.get();
    if (with_governed) {
      uint64_t fault_seed = fault_master.Next();
      options.fault_seed = fault_seed == 0 ? 1 : fault_seed;
    }
    options.client = client.get();
    options.flip_config = plant_flip;
    auto verdict = RunDifferential(scenario, options);
    if (!verdict.ok()) {
      std::printf("scenario %06llu %s ERROR %s\n",
                  static_cast<unsigned long long>(i),
                  spec.ToString().c_str(),
                  verdict.status().ToString().c_str());
      ++discrepancies;
      if (fail_fast) break;
      continue;
    }
    for (const ConfigOutcome& co : verdict->outcomes) {
      if (co.governed_retry) ++governed_retries;
    }
    if (verdict->agreed == ContainmentOutcome::kUnknown) ++unknowns;

    if (!verdict->discrepancy) {
      std::printf("scenario %06llu %s verdict=%s ok\n",
                  static_cast<unsigned long long>(i),
                  spec.ToString().c_str(),
                  ContainmentOutcomeToString(verdict->agreed));
      continue;
    }

    ++discrepancies;
    std::printf("scenario %06llu %s DISCREPANCY %s\n",
                static_cast<unsigned long long>(i), spec.ToString().c_str(),
                verdict->description.c_str());

    if (minimize && repros_written < max_repros) {
      // Minimization predicate: the configs still disagree on the
      // mutated program. The construction oracles are off — deleting
      // tgds/facts voids the certificates — so only config-vs-config
      // disagreement keeps a deletion.
      DifferentialOptions probe_options = options;
      probe_options.expected.reset();
      probe_options.expected_class.reset();
      probe_options.witness.clear();
      // Don't pollute the on-disk store with mutated-candidate artifacts.
      probe_options.persist_cache = nullptr;
      MinimizeStats stats;
      Program minimized = MinimizeProgram(
          scenario.program,
          [&probe_options](const Program& candidate) {
            auto probe = RunDifferential(candidate, probe_options);
            return probe.ok() && probe->discrepancy;
          },
          &stats);
      std::string path = repro_dir + "/soak_repro_" + std::to_string(i) +
                         ".dlgp";
      std::string header =
          "soak repro: " + verdict->description + "\n" +
          "from: --seed=" + std::to_string(seed) + " scenario " +
          std::to_string(i) + " (" + spec.ToString() + ")\n" +
          "replay: omqc_cli contain " + path + " Q1 Q2";
      std::ofstream out(path);
      out << RenderRepro(minimized, header);
      out.close();
      ++repros_written;
      std::printf(
          "  minimized %llu->%llu tgds, %llu->%llu facts, %llu->%llu query "
          "atoms (%llu probes); repro: %s\n",
          static_cast<unsigned long long>(stats.initial_tgds),
          static_cast<unsigned long long>(stats.final_tgds),
          static_cast<unsigned long long>(stats.initial_facts),
          static_cast<unsigned long long>(stats.final_facts),
          static_cast<unsigned long long>(stats.initial_query_atoms),
          static_cast<unsigned long long>(stats.final_query_atoms),
          static_cast<unsigned long long>(stats.probes), path.c_str());
    }
    if (fail_fast) break;
  }

  std::printf("soak: %llu scenarios, %llu discrepancies, %llu unknown\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(discrepancies),
              static_cast<unsigned long long>(unknowns));
  // Wall-clock-dependent tallies: stderr only, never in the deterministic
  // stream above.
  std::fprintf(stderr, "soak: governed retries=%llu\n",
               static_cast<unsigned long long>(governed_retries));
  if (client != nullptr) {
    std::fprintf(
        stderr, "soak: client reconnects=%llu backoffs=%llu\n",
        static_cast<unsigned long long>(client->retry_counters().reconnects),
        static_cast<unsigned long long>(client->retry_counters().backoffs));
  }
  if (persist_store != nullptr) {
    OmqCacheStats pstats = persist_store->Stats();
    std::fprintf(stderr,
                 "soak: persist hits=%llu writes=%llu entries=%llu "
                 "corrupt=%llu\n",
                 static_cast<unsigned long long>(
                     pstats.counters.persist_hits),
                 static_cast<unsigned long long>(
                     pstats.counters.persist_writes),
                 static_cast<unsigned long long>(pstats.persist_entries),
                 static_cast<unsigned long long>(
                     pstats.persist_corrupt_records));
    persist_store.reset();  // flushes
  }
  if (server != nullptr) {
    client.reset();
    server->Shutdown();
  }
  return discrepancies == 0 ? 0 : 1;
}
