// omqc_server — the containment-as-a-service daemon.
//
// Usage:
//   omqc_server [--port=N] [--address=A] [--port-file=PATH] [flags]
//
// Serves the omqc wire protocol (src/server/wire.h): eval / contain /
// classify requests with per-request deadlines and memory budgets,
// batched admission (src/server/admission.h), per-tenant governor quotas
// (src/server/tenant.h) and a STATS metrics endpoint.
//
// Daemon flags:
//   --port=N               listen port (default 0 = kernel-assigned;
//                          printed on stdout and written to --port-file)
//   --address=A            bind address (default 127.0.0.1)
//   --port-file=PATH       write the bound port to PATH (for scripts
//                          racing daemon startup)
//   --max-batch=N          admission: max requests per batch (default 16)
//   --linger-ms=N          admission: how long the first request of a
//                          batch waits for company (default 2)
//   --tenant-memory-mb=N   per-tenant memory quota (default 0 = none)
//   --tenant-deadline-ms=N per-tenant default request deadline
//                          (default 0 = none)
//   --tenant-max-concurrent=N  per-tenant concurrent-request cap; excess
//                          requests queue FIFO instead of tripping
//                          (default 0 = unlimited)
//   --contain-threads=N    intra-request containment parallelism
//                          (default 1; the pool parallelizes across
//                          requests)
//
// Shared engine flags (src/core/frontend.h): --threads=N sizes the worker
// pool (0 = hardware concurrency), --cache-capacity / --cache=on|off shape
// the shared compilation cache, --cache-dir=PATH warm-starts the cache
// from a persistent artifact store at boot and flushes new compilations
// back on drain (an unusable directory degrades to memory-only),
// --deadline-ms / --max-memory-mb set the server-wide request default
// deadline and total memory budget, --chase picks the chase strategy.
// --stats-json prints the final metrics document on shutdown.
//
// The daemon runs until a kShutdown request or SIGINT/SIGTERM, then
// drains: queued batches execute, responses flush, sessions join.

#include <csignal>
#include <cstdio>
#include <string>

#include "core/frontend.h"
#include "server/server.h"

using namespace omqc;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

/// Binary-specific numeric flag: "--name=value" into `out`, strict parse.
/// Returns true when `arg` matched `name` (error reported via `ok`).
bool ParseLocalFlag(const std::string& arg, const std::string& name,
                    uint64_t* out, bool* ok) {
  std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  auto value = ParseUnsignedFlagValue(name, arg.substr(prefix.size()));
  if (!value.ok()) {
    std::fprintf(stderr, "%s\n", value.status().message().c_str());
    *ok = false;
    return true;
  }
  *out = *value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  EngineFlags flags;
  flags.threads = 0;  // daemon default: hardware concurrency
  uint64_t port = 0;
  uint64_t max_batch = 16;
  uint64_t linger_ms = 2;
  uint64_t tenant_memory_mb = 0;
  uint64_t tenant_deadline_ms = 0;
  uint64_t tenant_max_concurrent = 0;
  uint64_t contain_threads = 1;
  std::string address = "127.0.0.1";
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto consumed = ParseEngineFlag(arg, &flags);
    if (!consumed.ok()) {
      std::fprintf(stderr, "%s\n", consumed.status().message().c_str());
      return 2;
    }
    if (*consumed) continue;
    bool ok = true;
    if (ParseLocalFlag(arg, "--port", &port, &ok) ||
        ParseLocalFlag(arg, "--max-batch", &max_batch, &ok) ||
        ParseLocalFlag(arg, "--linger-ms", &linger_ms, &ok) ||
        ParseLocalFlag(arg, "--tenant-memory-mb", &tenant_memory_mb, &ok) ||
        ParseLocalFlag(arg, "--tenant-deadline-ms", &tenant_deadline_ms,
                       &ok) ||
        ParseLocalFlag(arg, "--tenant-max-concurrent",
                       &tenant_max_concurrent, &ok) ||
        ParseLocalFlag(arg, "--contain-threads", &contain_threads, &ok)) {
      if (!ok) return 2;
      continue;
    }
    if (arg.rfind("--address=", 0) == 0) {
      address = arg.substr(10);
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      continue;
    }
    std::fprintf(stderr,
                 "unknown flag '%s'\nusage: %s [--port=N] [--address=A] "
                 "[--port-file=PATH] [--max-batch=N] [--linger-ms=N] "
                 "[--tenant-memory-mb=N] [--tenant-deadline-ms=N] "
                 "[--tenant-max-concurrent=N] [--contain-threads=N] %s\n",
                 arg.c_str(), argv[0], EngineFlagsUsage());
    return 2;
  }
  if (port > 65535) {
    std::fprintf(stderr, "--port=%llu out of range\n",
                 static_cast<unsigned long long>(port));
    return 2;
  }

  ServerConfig config;
  config.listen_address = address;
  config.worker_threads = flags.threads;
  config.cache_capacity = flags.cache ? flags.cache_capacity : 0;
  config.cache_dir = flags.cache ? flags.cache_dir : "";
  config.admission.max_batch = static_cast<size_t>(max_batch);
  config.admission.linger_ms = linger_ms;
  config.default_deadline_ms = flags.deadline_ms;
  config.server_memory_budget_bytes = flags.max_memory_mb << 20;
  config.tenant_quota.memory_quota_bytes =
      static_cast<size_t>(tenant_memory_mb) << 20;
  config.tenant_quota.default_deadline_ms = tenant_deadline_ms;
  config.tenant_quota.max_concurrent = tenant_max_concurrent;
  config.contain_threads = static_cast<size_t>(contain_threads);
  config.chase = flags.chase;

  OmqServer server(std::move(config));
  auto bound = server.ListenAndStart(static_cast<uint16_t>(port));
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --port-file=%s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", *bound);
    std::fclose(f);
  }
  std::printf("omqc_server listening on %s:%u\n", address.c_str(), *bound);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!server.WaitForShutdownRequest(std::chrono::milliseconds(200))) {
    if (g_signal != 0) break;
  }

  server.Shutdown();
  if (flags.stats_json) std::printf("%s\n", server.StatsJson().c_str());
  std::printf("omqc_server: clean shutdown\n");
  return 0;
}
