// omqc_cli — a command-line front end for the library.
//
// Usage:
//   omqc_cli classify <program-file>
//   omqc_cli eval <program-file> <query-name>
//   omqc_cli rewrite <program-file> <query-name>
//   omqc_cli contain <program-file> <query-name-1> <query-name-2>
//   omqc_cli distribute <program-file> <query-name>
//   omqc_cli explain <program-file> <query-name> [answer constants...]
//
// Flags (anywhere on the command line):
//   --threads=N              worker threads for `contain` (0 = hardware
//                            concurrency)
//   --stats                  print per-layer EngineStats after `eval` /
//                            `contain`
//   --chase=naive|seminaive  chase trigger-enumeration strategy for `eval`
//                            and `contain` (default: seminaive)
//   --cache=on|off           compilation cache (classification, UCQ
//                            rewritings, prepared RHS evaluators) for
//                            `eval` and `contain` (default: on)
//   --cache-capacity=N       total cache entries across shards
//                            (default: 1024)
//   --deadline-ms=N          wall-clock deadline for `eval` / `contain`
//                            (0 = none, default). A tripped deadline
//                            reports the partial result and exits 3.
//   --max-memory-mb=N        memory budget for governed intermediate
//                            results (chase atoms, rewriting disjuncts) in
//                            `eval` / `contain` (0 = none, default);
//                            tripping it also exits 3.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 resource governor tripped
// (deadline or memory budget) before a definite answer.
//
// The program file holds tgds, named queries and facts in the DLGP-style
// format (see README). The data schema is taken to be the set of
// predicates occurring in the facts plus any query-body predicates that
// no tgd derives.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/governor.h"
#include "base/string_util.h"
#include "cache/omq_cache.h"
#include "core/applications.h"
#include "core/containment.h"
#include "core/eval.h"
#include "core/explain.h"
#include "rewrite/xrewrite.h"
#include "tgd/parser.h"

using namespace omqc;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Command-line flags, stripped from argv before positional parsing.
struct CliFlags {
  size_t threads = 1;  ///< --threads=N (0 = hardware concurrency)
  bool stats = false;  ///< --stats
  ChaseStrategy chase = ChaseStrategy::kSemiNaive;  ///< --chase=...
  bool cache = true;             ///< --cache=on|off
  size_t cache_capacity = 1024;  ///< --cache-capacity=N
  uint64_t deadline_ms = 0;      ///< --deadline-ms=N (0 = none)
  size_t max_memory_mb = 0;      ///< --max-memory-mb=N (0 = none)
};

/// Exit code for a tripped resource governor — distinct from 1 (error) and
/// 2 (usage) so scripts can tell "ran out of budget" from "went wrong".
constexpr int kGovernorTripExit = 3;

/// Applies the CLI deadline/memory flags to `governor`.
void ConfigureGovernor(const CliFlags& flags, ResourceGovernor* governor) {
  if (flags.deadline_ms > 0) {
    governor->set_deadline_after(std::chrono::milliseconds(flags.deadline_ms));
  }
  if (flags.max_memory_mb > 0) {
    governor->set_memory_budget(flags.max_memory_mb * size_t{1024} * 1024);
  }
}

/// Shared tail for governed commands: a trip overrides the command's own
/// exit code (the partial output has already been printed).
int GovernedExit(const ResourceGovernor& governor, int code) {
  if (governor.tripped()) {
    std::fprintf(stderr, "governor: %s\n",
                 governor.TripStatus().ToString().c_str());
    return kGovernorTripExit;
  }
  return code;
}

Result<Program> LoadProgram(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseProgram(text.str());
}

/// Data schema heuristic: fact predicates + underived query predicates.
Schema InferDataSchema(const Program& program) {
  Schema schema = program.facts.InducedSchema();
  Schema derived = program.tgds.HeadPredicates();
  for (const NamedQuery& nq : program.queries) {
    for (const Atom& a : nq.query.body) {
      if (!derived.Contains(a.predicate)) schema.Add(a.predicate);
    }
  }
  for (const Tgd& tgd : program.tgds.tgds) {
    for (const Atom& a : tgd.body) {
      if (!derived.Contains(a.predicate)) schema.Add(a.predicate);
    }
  }
  return schema;
}

Result<Omq> QueryNamed(const Program& program, const Schema& schema,
                       const std::string& name) {
  UnionOfCQs ucq = program.QueriesNamed(name);
  if (ucq.empty()) {
    return Status::NotFound("no query named " + name);
  }
  if (ucq.size() > 1) {
    return Status::Unsupported(
        "query " + name + " is a UCQ; this command expects a single CQ");
  }
  return Omq{schema, program.tgds, ucq.disjuncts.front()};
}

int Classify(const Program& program) {
  ClassificationReport report = omqc::Classify(program.tgds);
  std::printf("tgds: %zu\nclasses: %s\nprimary class: %s\n",
              program.tgds.size(), report.ToString().c_str(),
              TgdClassToString(PrimaryClass(program.tgds)));
  return 0;
}

/// The process-wide compilation cache (null when --cache=off).
OmqCache* SharedCache(const CliFlags& flags) {
  static OmqCache* cache =
      flags.cache ? new OmqCache(OmqCacheConfig{flags.cache_capacity, 8})
                  : nullptr;
  return cache;
}

int Eval(const Program& program, const Schema& schema,
         const std::string& name, const CliFlags& flags) {
  auto omq = QueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  EngineStats stats;
  EvalOptions eval_options;
  eval_options.chase_strategy = flags.chase;
  eval_options.cache = SharedCache(flags);
  ResourceGovernor governor;
  ConfigureGovernor(flags, &governor);
  eval_options.governor = &governor;
  auto answers = EvalAll(*omq, program.facts, eval_options, &stats);
  if (!answers.ok()) {
    return GovernedExit(governor, Fail(answers.status().ToString()));
  }
  std::printf("%zu answer(s):\n", answers->size());
  for (const auto& tuple : *answers) {
    std::printf("  (%s)\n",
                omqc::JoinMapped(tuple, ", ",
                           [](const Term& t) { return t.ToString(); })
                    .c_str());
  }
  if (flags.stats) std::printf("%s\n", stats.ToString().c_str());
  return GovernedExit(governor, 0);
}

int Rewrite(const Program& program, const Schema& schema,
            const std::string& name) {
  auto omq = QueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  XRewriteStats stats;
  auto rewriting = XRewrite(schema, omq->tgds, omq->query,
                            XRewriteOptions(), &stats);
  if (!rewriting.ok()) return Fail(rewriting.status().ToString());
  UnionOfCQs minimized = MinimizeUCQ(*rewriting);
  std::printf("UCQ rewriting over %s (%zu disjuncts, %zu minimized):\n%s\n",
              schema.ToString().c_str(), rewriting->size(),
              minimized.size(), minimized.ToString().c_str());
  return 0;
}

int Contain(const Program& program, const Schema& schema,
            const std::string& lhs, const std::string& rhs,
            const CliFlags& flags) {
  auto q1 = QueryNamed(program, schema, lhs);
  auto q2 = QueryNamed(program, schema, rhs);
  if (!q1.ok()) return Fail(q1.status().ToString());
  if (!q2.ok()) return Fail(q2.status().ToString());
  ContainmentOptions options;
  options.num_threads = flags.threads;
  options.eval.chase_strategy = flags.chase;
  options.cache = SharedCache(flags);
  ResourceGovernor governor;
  ConfigureGovernor(flags, &governor);
  options.governor = &governor;
  auto result = CheckContainment(*q1, *q2, options);
  if (!result.ok()) {
    return GovernedExit(governor, Fail(result.status().ToString()));
  }
  std::printf("%s ⊆ %s: %s\n", lhs.c_str(), rhs.c_str(),
              ContainmentOutcomeToString(result->outcome));
  if (!result->detail.empty()) {
    std::printf("  %s\n", result->detail.c_str());
  }
  if (result->witness.has_value()) {
    std::printf("counterexample database:\n%s\n",
                PrettifiedCopy(result->witness->database)
                    .ToString()
                    .c_str());
  }
  std::printf("candidates checked: %zu (largest: %zu atoms)\n",
              result->candidates_checked, result->max_witness_size);
  if (flags.stats) std::printf("%s\n", result->stats.ToString().c_str());
  return GovernedExit(governor, 0);
}

int Explain(const Program& program, const Schema& schema,
            const std::string& name,
            const std::vector<std::string>& constants) {
  auto omq = QueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  std::vector<Term> tuple;
  for (const std::string& c : constants) tuple.push_back(Term::Constant(c));
  auto why = ExplainTuple(*omq, program.facts, tuple);
  if (!why.ok()) return Fail(why.status().ToString());
  std::printf("%s", why->ToString(program.tgds).c_str());
  return 0;
}

int Distribute(const Program& program, const Schema& schema,
               const std::string& name) {
  auto omq = QueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  auto result = DistributesOverComponents(*omq);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("%s distributes over components: %s\n", name.c_str(),
              ContainmentOutcomeToString(result->outcome));
  if (!result->detail.empty()) std::printf("  %s\n", result->detail.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::vector<std::string> args;  // positional: command, file, names...
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      flags.threads =
          static_cast<size_t>(std::strtoul(arg.c_str() + 10, nullptr, 10));
      continue;
    }
    if (arg == "--stats") {
      flags.stats = true;
      continue;
    }
    if (arg.rfind("--chase=", 0) == 0) {
      std::string strategy = arg.substr(8);
      if (strategy == "naive") {
        flags.chase = ChaseStrategy::kNaive;
      } else if (strategy == "seminaive") {
        flags.chase = ChaseStrategy::kSemiNaive;
      } else {
        std::fprintf(stderr, "--chase expects 'naive' or 'seminaive'\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      std::string mode = arg.substr(8);
      if (mode == "on") {
        flags.cache = true;
      } else if (mode == "off") {
        flags.cache = false;
      } else {
        std::fprintf(stderr, "--cache expects 'on' or 'off'\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--cache-capacity=", 0) == 0) {
      flags.cache_capacity =
          static_cast<size_t>(std::strtoul(arg.c_str() + 17, nullptr, 10));
      if (flags.cache_capacity == 0) {
        std::fprintf(stderr, "--cache-capacity expects a positive integer\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      flags.deadline_ms =
          static_cast<uint64_t>(std::strtoull(arg.c_str() + 14, nullptr, 10));
      continue;
    }
    if (arg.rfind("--max-memory-mb=", 0) == 0) {
      flags.max_memory_mb =
          static_cast<size_t>(std::strtoul(arg.c_str() + 16, nullptr, 10));
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    args.push_back(std::move(arg));
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s classify|eval|rewrite|contain|distribute|"
                 "explain <program-file> [query names / constants...] "
                 "[--threads=N] [--stats] [--chase=naive|seminaive] "
                 "[--cache=on|off] [--cache-capacity=N] [--deadline-ms=N] "
                 "[--max-memory-mb=N]\n"
                 "exit codes: 0 ok, 1 error, 2 usage, 3 governor tripped "
                 "(deadline/memory)\n",
                 argv[0]);
    return 2;
  }
  auto program = LoadProgram(args[1].c_str());
  if (!program.ok()) return Fail(program.status().ToString());
  Schema schema = InferDataSchema(*program);

  const std::string& command = args[0];
  if (command == "classify") return Classify(*program);
  if (command == "eval" && args.size() >= 3) {
    return Eval(*program, schema, args[2], flags);
  }
  if (command == "rewrite" && args.size() >= 3) {
    return Rewrite(*program, schema, args[2]);
  }
  if (command == "contain" && args.size() >= 4) {
    return Contain(*program, schema, args[2], args[3], flags);
  }
  if (command == "distribute" && args.size() >= 3) {
    return Distribute(*program, schema, args[2]);
  }
  if (command == "explain" && args.size() >= 3) {
    return Explain(*program, schema, args[2],
                   std::vector<std::string>(args.begin() + 3, args.end()));
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n",
               command.c_str());
  return 2;
}
