// omqc_cli — a command-line front end for the library.
//
// Usage:
//   omqc_cli classify <program-file>
//   omqc_cli eval <program-file> <query-name>
//   omqc_cli rewrite <program-file> <query-name>
//   omqc_cli contain <program-file> <query-name-1> <query-name-2>
//   omqc_cli distribute <program-file> <query-name>
//   omqc_cli explain <program-file> <query-name> [answer constants...]
//
// Flags (anywhere on the command line; shared with omqc_server/omqc_load,
// parsed by src/core/frontend.h — malformed numeric values are a usage
// error):
//   --threads=N              worker threads for `contain` (0 = hardware
//                            concurrency)
//   --stats                  print per-layer EngineStats after `eval` /
//                            `contain`
//   --stats-json             print EngineStats as one JSON document (same
//                            serializer as the server STATS endpoint)
//   --chase=naive|seminaive  chase trigger-enumeration strategy for `eval`
//                            and `contain` (default: seminaive)
//   --cache=on|off           compilation cache (classification, UCQ
//                            rewritings, prepared RHS evaluators) for
//                            `eval` and `contain` (default: on)
//   --cache-capacity=N       total cache entries across shards
//                            (default: 1024)
//   --cache-dir=PATH         persistent artifact store: warm-start the
//                            cache from PATH (created if absent) and
//                            flush new artifacts back on exit, so a
//                            second process re-running a command serves
//                            compilations from disk instead of redoing
//                            them. Verdicts are byte-identical either way.
//   --deadline-ms=N          wall-clock deadline for `eval` / `contain`
//                            (0 = none, default). A tripped deadline
//                            reports the partial result and exits 3.
//   --max-memory-mb=N        memory budget for governed intermediate
//                            results (chase atoms, rewriting disjuncts) in
//                            `eval` / `contain` (0 = none, default);
//                            tripping it also exits 3.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 resource governor tripped
// (deadline or memory budget) before a definite answer.
//
// The program file holds tgds, named queries and facts in the DLGP-style
// format (see README). The data schema is taken to be the set of
// predicates occurring in the facts plus any query-body predicates that
// no tgd derives.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/governor.h"
#include "core/applications.h"
#include "core/containment.h"
#include "core/eval.h"
#include "core/explain.h"
#include "core/frontend.h"
#include "core/stats_json.h"
#include "rewrite/xrewrite.h"
#include "tgd/parser.h"

using namespace omqc;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Exit code for a tripped resource governor — distinct from 1 (error) and
/// 2 (usage) so scripts can tell "ran out of budget" from "went wrong".
constexpr int kGovernorTripExit = 3;

/// Shared tail for governed commands: a trip overrides the command's own
/// exit code (the partial output has already been printed).
int GovernedExit(const ResourceGovernor& governor, int code) {
  if (governor.tripped()) {
    std::fprintf(stderr, "governor: %s\n",
                 governor.TripStatus().ToString().c_str());
    return kGovernorTripExit;
  }
  return code;
}

/// --stats / --stats-json tail for `eval` and `contain`.
void PrintStats(const EngineFlags& flags, const EngineStats& stats) {
  if (flags.stats) std::printf("%s\n", stats.ToString().c_str());
  if (flags.stats_json) {
    std::printf("%s\n", EngineStatsToJson(stats).c_str());
  }
}

int Classify(const Program& program) {
  std::fputs(FormatClassificationReport(program.tgds).c_str(), stdout);
  return 0;
}

int Eval(const Program& program, const Schema& schema,
         const std::string& name, const EngineFlags& flags,
         ArtifactStore* cache) {
  auto omq = SingleQueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  EngineStats stats;
  EvalOptions eval_options;
  eval_options.chase_strategy = flags.chase;
  eval_options.cache = cache;
  ResourceGovernor governor;
  ApplyGovernorFlags(flags, &governor);
  eval_options.governor = &governor;
  auto answers = EvalAll(*omq, program.facts, eval_options, &stats);
  if (!answers.ok()) {
    return GovernedExit(governor, Fail(answers.status().ToString()));
  }
  std::fputs(FormatAnswers(*answers).c_str(), stdout);
  PrintStats(flags, stats);
  return GovernedExit(governor, 0);
}

int Rewrite(const Program& program, const Schema& schema,
            const std::string& name) {
  auto omq = SingleQueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  XRewriteStats stats;
  auto rewriting = XRewrite(schema, omq->tgds, omq->query,
                            XRewriteOptions(), &stats);
  if (!rewriting.ok()) return Fail(rewriting.status().ToString());
  UnionOfCQs minimized = MinimizeUCQ(*rewriting);
  std::printf("UCQ rewriting over %s (%zu disjuncts, %zu minimized):\n%s\n",
              schema.ToString().c_str(), rewriting->size(),
              minimized.size(), minimized.ToString().c_str());
  return 0;
}

int Contain(const Program& program, const Schema& schema,
            const std::string& lhs, const std::string& rhs,
            const EngineFlags& flags, ArtifactStore* cache) {
  auto q1 = SingleQueryNamed(program, schema, lhs);
  auto q2 = SingleQueryNamed(program, schema, rhs);
  if (!q1.ok()) return Fail(q1.status().ToString());
  if (!q2.ok()) return Fail(q2.status().ToString());
  ContainmentOptions options;
  options.num_threads = flags.threads;
  options.eval.chase_strategy = flags.chase;
  options.cache = cache;
  ResourceGovernor governor;
  ApplyGovernorFlags(flags, &governor);
  options.governor = &governor;
  auto result = CheckContainment(*q1, *q2, options);
  if (!result.ok()) {
    return GovernedExit(governor, Fail(result.status().ToString()));
  }
  std::fputs(FormatContainmentReport(lhs, rhs, *result).c_str(), stdout);
  PrintStats(flags, result->stats);
  return GovernedExit(governor, 0);
}

int Explain(const Program& program, const Schema& schema,
            const std::string& name,
            const std::vector<std::string>& constants) {
  auto omq = SingleQueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  std::vector<Term> tuple;
  for (const std::string& c : constants) tuple.push_back(Term::Constant(c));
  auto why = ExplainTuple(*omq, program.facts, tuple);
  if (!why.ok()) return Fail(why.status().ToString());
  std::printf("%s", why->ToString(program.tgds).c_str());
  return 0;
}

int Distribute(const Program& program, const Schema& schema,
               const std::string& name) {
  auto omq = SingleQueryNamed(program, schema, name);
  if (!omq.ok()) return Fail(omq.status().ToString());
  auto result = DistributesOverComponents(*omq);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("%s distributes over components: %s\n", name.c_str(),
              ContainmentOutcomeToString(result->outcome));
  if (!result->detail.empty()) std::printf("  %s\n", result->detail.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  EngineFlags flags;
  std::vector<std::string> args;  // positional: command, file, names...
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto consumed = ParseEngineFlag(arg, &flags);
    if (!consumed.ok()) {
      std::fprintf(stderr, "%s\n", consumed.status().message().c_str());
      return 2;
    }
    if (*consumed) continue;
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    args.push_back(std::move(arg));
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s classify|eval|rewrite|contain|distribute|"
                 "explain <program-file> [query names / constants...] %s\n"
                 "exit codes: 0 ok, 1 error, 2 usage, 3 governor tripped "
                 "(deadline/memory)\n",
                 argv[0], EngineFlagsUsage());
    return 2;
  }
  auto program = LoadProgramFile(args[1]);
  if (!program.ok()) return Fail(program.status().ToString());
  Schema schema = InferProgramDataSchema(*program);
  auto cache_or = MakeCacheFromFlags(flags);
  if (!cache_or.ok()) return Fail(cache_or.status().ToString());
  std::unique_ptr<ArtifactStore> cache = std::move(cache_or).value();
  // Seal everything this run compiled into the on-disk store (no-op for
  // the memory-only cache) so the next process warm-starts.
  struct FlushOnExit {
    ArtifactStore* store;
    ~FlushOnExit() {
      if (store != nullptr) store->Flush();
    }
  } flush_on_exit{cache.get()};

  const std::string& command = args[0];
  if (command == "classify") return Classify(*program);
  if (command == "eval" && args.size() >= 3) {
    return Eval(*program, schema, args[2], flags, cache.get());
  }
  if (command == "rewrite" && args.size() >= 3) {
    return Rewrite(*program, schema, args[2]);
  }
  if (command == "contain" && args.size() >= 4) {
    return Contain(*program, schema, args[2], args[3], flags, cache.get());
  }
  if (command == "distribute" && args.size() >= 3) {
    return Distribute(*program, schema, args[2]);
  }
  if (command == "explain" && args.size() >= 3) {
    return Explain(*program, schema, args[2],
                   std::vector<std::string>(args.begin() + 3, args.end()));
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n",
               command.c_str());
  return 2;
}
