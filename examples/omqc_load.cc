// omqc_load — load driver and latency benchmark for omqc_server.
//
// Generates a seedable mixed workload (eval / contain / classify over
// several random ontologies from src/generators), replays it against a
// daemon at target concurrency, and reports p50/p99 latency and RPS for a
// cold pass (first contact: every compilation is a cache miss) and a warm
// pass (same requests again: the shared cache is hot).
//
// Usage:
//   omqc_load --port=N [--host=H] [flags]         drive a running daemon
//   omqc_load --inprocess [flags]                 self-contained (spawns
//                                                 an in-process server)
//
// Flags:
//   --requests=N       requests per pass (default 60)
//   --concurrency=C    client connections/threads (default 4)
//   --ontologies=K     distinct ontologies in the mix (default 4)
//   --tenants=T        tenant ids cycled through (default 2)
//   --seed=S           workload seed (default 1)
//   --json=PATH        write google-benchmark-format JSON (for
//                      scripts/check_bench_guardrail.py)
//   --label=NAME       benchmark name prefix (default server_mixed)
//   --verify           assert every response is kOk and responses for the
//                      same request are identical across passes
//   --dump-dir=DIR     write each ontology program, the first response
//                      body per request shape, and manifest.tsv mapping
//                      omqc_cli command lines to expected outputs (the CI
//                      smoke job diffs CLI output against these)
//   --server-threads=N worker threads for --inprocess (default 4)
//
// Exit codes: 0 success, 1 transport/verification failure, 2 usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/json_writer.h"
#include "core/frontend.h"
#include "generators/families.h"
#include "logic/substitution.h"
#include "server/client.h"
#include "server/server.h"
#include "tgd/parser.h"

using namespace omqc;

namespace {

using Clock = std::chrono::steady_clock;

struct LoadOntology {
  std::string stem;  ///< onto_<i>
  std::string text;  ///< DLGP program: tgds, queries Q/Q2, facts
};

/// One request shape of the workload. `combo` keys verification groups:
/// every request with the same combo must produce the same body.
struct LoadRequest {
  RequestType type = RequestType::kEval;
  int ontology = 0;
  std::string query;
  std::string query2;
  std::string tenant;
  std::string combo;
};

/// A relaxation of `q` (drop the last body atom when every answer
/// variable survives) — gives the contain mix both verdicts instead of
/// only reflexive containments.
ConjunctiveQuery RelaxQuery(const ConjunctiveQuery& q) {
  if (q.body.size() < 2) return q;
  std::vector<Atom> body(q.body.begin(), q.body.end() - 1);
  for (const Term& v : q.answer_vars) {
    if (!v.IsVariable()) continue;
    bool found = false;
    for (const Atom& atom : body) {
      for (const Term& t : atom.args) {
        if (t == v) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return q;  // relaxation would unbind an answer variable
  }
  return ConjunctiveQuery(q.answer_vars, std::move(body));
}

std::vector<LoadOntology> MakeOntologies(int count, uint32_t seed) {
  const TgdClass classes[] = {TgdClass::kLinear, TgdClass::kSticky,
                              TgdClass::kNonRecursive};
  std::vector<LoadOntology> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    RandomOmqConfig config;
    config.target = classes[i % 3];
    config.seed = seed + static_cast<uint32_t>(i);
    config.num_tgds = 3 + i % 3;
    config.query_atoms = 2 + i % 2;
    Omq omq = MakeRandomOmq(config);

    Program program;
    program.tgds = omq.tgds;
    program.queries.push_back({"Q", omq.query});
    program.queries.push_back({"Q2", RelaxQuery(omq.query)});
    // Ground the query body into facts so eval has at least one certain
    // answer and the homomorphism search does real work.
    Substitution grounding;
    std::vector<Term> vars = omq.query.Variables();
    for (size_t v = 0; v < vars.size(); ++v) {
      grounding.Bind(vars[v], Term::Constant("k" + std::to_string(v)));
    }
    program.facts = Database(grounding.Apply(omq.query.body));

    LoadOntology onto;
    onto.stem = "onto_" + std::to_string(i);
    onto.text = SerializeProgram(program);
    out.push_back(std::move(onto));
  }
  return out;
}

std::vector<LoadRequest> MakeRequests(int count, int ontologies,
                                      int tenants) {
  std::vector<LoadRequest> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    LoadRequest req;
    req.ontology = i % ontologies;
    req.tenant = "t" + std::to_string(i % tenants);
    switch (i % 3) {
      case 0:
        req.type = RequestType::kEval;
        req.query = "Q";
        break;
      case 1:
        req.type = RequestType::kContain;
        // Alternate directions so the mix sees both verdicts.
        if ((i / 3) % 2 == 0) {
          req.query = "Q";
          req.query2 = "Q2";
        } else {
          req.query = "Q2";
          req.query2 = "Q";
        }
        break;
      default:
        req.type = RequestType::kClassify;
        break;
    }
    req.combo = std::string(RequestTypeToString(req.type)) + "_" +
                std::to_string(req.ontology) +
                (req.query2.empty() ? "" : "_" + req.query + "_" +
                                               req.query2);
    out.push_back(std::move(req));
  }
  return out;
}

struct PassResult {
  std::vector<uint64_t> latencies_us;  ///< per completed request
  double wall_seconds = 0;
  uint64_t errors = 0;  ///< transport failures or non-kOk responses
};

struct Percentiles {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  double mean = 0;
};

Percentiles ComputePercentiles(std::vector<uint64_t> lat) {
  Percentiles p;
  if (lat.empty()) return p;
  std::sort(lat.begin(), lat.end());
  p.p50 = lat[lat.size() / 2];
  p.p99 = lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
  uint64_t total = 0;
  for (uint64_t v : lat) total += v;
  p.mean = static_cast<double>(total) / static_cast<double>(lat.size());
  return p;
}

class LoadDriver {
 public:
  LoadDriver(std::vector<LoadOntology> ontologies,
             std::vector<LoadRequest> requests, int concurrency)
      : ontologies_(std::move(ontologies)),
        requests_(std::move(requests)),
        concurrency_(concurrency),
        bodies_(requests_.size()) {}

  /// Connection factory: TCP or in-process, one per worker thread.
  using ConnectFn = std::function<Result<OmqClient>()>;

  PassResult RunPass(const ConnectFn& connect) {
    PassResult result;
    result.latencies_us.resize(requests_.size(), 0);
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> workers;
    Clock::time_point start = Clock::now();
    for (int w = 0; w < concurrency_; ++w) {
      workers.emplace_back([&] {
        auto client = connect();
        if (!client.ok()) {
          std::fprintf(stderr, "connect: %s\n",
                       client.status().ToString().c_str());
          errors.fetch_add(requests_.size(), std::memory_order_relaxed);
          next.store(requests_.size(), std::memory_order_release);
          return;
        }
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests_.size()) return;
          const LoadRequest& req = requests_[i];
          WireRequest wire;
          wire.type = req.type;
          wire.tenant = req.tenant;
          wire.program = ontologies_[req.ontology].text;
          wire.query = req.query;
          wire.query2 = req.query2;
          Clock::time_point t0 = Clock::now();
          auto response = client->Call(std::move(wire));
          Clock::time_point t1 = Clock::now();
          result.latencies_us[i] = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 -
                                                                    t0)
                  .count());
          if (!response.ok()) {
            std::fprintf(stderr, "request %zu: %s\n", i,
                         response.status().ToString().c_str());
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (response->code != StatusCode::kOk) {
            std::fprintf(stderr, "request %zu (%s): %s: %s\n", i,
                         req.combo.c_str(),
                         StatusCodeToString(response->code),
                         response->message.c_str());
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          std::lock_guard<std::mutex> lock(bodies_mu_);
          bodies_[i].push_back(response->body);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.errors = errors.load(std::memory_order_acquire);
    return result;
  }

  /// Every response for the same request shape must be identical — across
  /// workers, passes and batch assignments. Returns mismatch count.
  uint64_t VerifyConsistency() {
    std::lock_guard<std::mutex> lock(bodies_mu_);
    uint64_t mismatches = 0;
    std::map<std::string, const std::string*> reference;
    for (size_t i = 0; i < requests_.size(); ++i) {
      for (const std::string& body : bodies_[i]) {
        auto [it, inserted] =
            reference.emplace(requests_[i].combo, &body);
        if (!inserted && *it->second != body) {
          std::fprintf(stderr,
                       "verify: request %zu (%s) body diverged\n--- "
                       "first ---\n%s--- this ---\n%s",
                       i, requests_[i].combo.c_str(),
                       it->second->c_str(), body.c_str());
          ++mismatches;
        }
      }
    }
    return mismatches;
  }

  /// Writes programs, expected bodies and a manifest for CLI diffing.
  bool Dump(const std::string& dir) {
    std::lock_guard<std::mutex> lock(bodies_mu_);
    auto write_file = [&](const std::string& name,
                          const std::string& content) {
      std::string path = dir + "/" + name;
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      std::fwrite(content.data(), 1, content.size(), f);
      std::fclose(f);
      return true;
    };
    for (const LoadOntology& onto : ontologies_) {
      if (!write_file(onto.stem + ".dlgp", onto.text)) return false;
    }
    std::string manifest;
    std::map<std::string, bool> seen;
    for (size_t i = 0; i < requests_.size(); ++i) {
      if (bodies_[i].empty()) continue;
      const LoadRequest& req = requests_[i];
      if (!seen.emplace(req.combo, true).second) continue;
      std::string resp_file = "resp_" + req.combo + ".txt";
      if (!write_file(resp_file, bodies_[i].front())) return false;
      // "-" placeholders keep the column count fixed for shell `read`
      // consumers (empty tab-separated fields collapse under IFS).
      manifest += std::string(RequestTypeToString(req.type)) + "\t" +
                  ontologies_[req.ontology].stem + ".dlgp\t" +
                  (req.query.empty() ? "-" : req.query) + "\t" +
                  (req.query2.empty() ? "-" : req.query2) + "\t" +
                  resp_file + "\n";
    }
    return write_file("manifest.tsv", manifest);
  }

 private:
  std::vector<LoadOntology> ontologies_;
  std::vector<LoadRequest> requests_;
  int concurrency_;
  std::mutex bodies_mu_;
  std::vector<std::vector<std::string>> bodies_;  ///< per request index
};

void AppendBenchEntry(JsonWriter& w, const std::string& name,
                      double real_time_us, double rps) {
  w.BeginObject();
  w.Field("name", name);
  w.Field("run_name", name);
  w.Field("run_type", "iteration");
  w.Field("repetitions", uint64_t{1});
  w.Field("repetition_index", uint64_t{0});
  w.Field("threads", uint64_t{1});
  w.Field("iterations", uint64_t{1});
  w.Field("real_time", real_time_us);
  w.Field("cpu_time", real_time_us);
  w.Field("time_unit", "us");
  if (rps > 0) w.Field("items_per_second", rps);
  w.EndObject();
}

bool ParseLocalFlag(const std::string& arg, const std::string& name,
                    uint64_t* out, bool* ok) {
  std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  auto value = ParseUnsignedFlagValue(name, arg.substr(prefix.size()));
  if (!value.ok()) {
    std::fprintf(stderr, "%s\n", value.status().message().c_str());
    *ok = false;
    return true;
  }
  *out = *value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 0;
  uint64_t requests = 60;
  uint64_t concurrency = 4;
  uint64_t ontologies = 4;
  uint64_t tenants = 2;
  uint64_t seed = 1;
  uint64_t server_threads = 4;
  std::string host = "127.0.0.1";
  std::string json_path;
  std::string label = "server_mixed";
  std::string dump_dir;
  bool inprocess = false;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool ok = true;
    if (ParseLocalFlag(arg, "--port", &port, &ok) ||
        ParseLocalFlag(arg, "--requests", &requests, &ok) ||
        ParseLocalFlag(arg, "--concurrency", &concurrency, &ok) ||
        ParseLocalFlag(arg, "--ontologies", &ontologies, &ok) ||
        ParseLocalFlag(arg, "--tenants", &tenants, &ok) ||
        ParseLocalFlag(arg, "--seed", &seed, &ok) ||
        ParseLocalFlag(arg, "--server-threads", &server_threads, &ok)) {
      if (!ok) return 2;
      continue;
    }
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--dump-dir=", 0) == 0) {
      dump_dir = arg.substr(11);
    } else if (arg == "--inprocess") {
      inprocess = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(
          stderr,
          "unknown flag '%s'\nusage: %s --port=N [--host=H] | --inprocess "
          "[--requests=N] [--concurrency=C] [--ontologies=K] [--tenants=T] "
          "[--seed=S] [--json=PATH] [--label=NAME] [--verify] "
          "[--dump-dir=DIR] [--server-threads=N]\n",
          arg.c_str(), argv[0]);
      return 2;
    }
  }
  if (!inprocess && (port == 0 || port > 65535)) {
    std::fprintf(stderr, "need --port=N (1-65535) or --inprocess\n");
    return 2;
  }
  if (requests == 0 || concurrency == 0 || ontologies == 0 ||
      tenants == 0) {
    std::fprintf(stderr,
                 "--requests/--concurrency/--ontologies/--tenants must be "
                 "positive\n");
    return 2;
  }

  LoadDriver driver(
      MakeOntologies(static_cast<int>(ontologies),
                     static_cast<uint32_t>(seed)),
      MakeRequests(static_cast<int>(requests), static_cast<int>(ontologies),
                   static_cast<int>(tenants)),
      static_cast<int>(concurrency));

  std::unique_ptr<OmqServer> local_server;
  LoadDriver::ConnectFn connect;
  if (inprocess) {
    ServerConfig config;
    config.worker_threads = static_cast<size_t>(server_threads);
    local_server = std::make_unique<OmqServer>(std::move(config));
    connect = [&local_server]() -> Result<OmqClient> {
      OMQC_ASSIGN_OR_RETURN(OwnedFd fd, local_server->ConnectInProcess());
      return OmqClient(std::move(fd));
    };
  } else {
    connect = [&host, port]() {
      return OmqClient::Connect(host, static_cast<uint16_t>(port));
    };
  }

  // Cold pass: first contact, every compilation is a cache miss (assumes
  // a freshly started daemon). Warm pass: identical requests again.
  PassResult cold = driver.RunPass(connect);
  PassResult warm = driver.RunPass(connect);

  uint64_t mismatches = 0;
  if (verify) mismatches = driver.VerifyConsistency();
  if (!dump_dir.empty() && !driver.Dump(dump_dir)) return 1;
  if (local_server != nullptr) local_server->Shutdown();

  Percentiles cold_p = ComputePercentiles(cold.latencies_us);
  Percentiles warm_p = ComputePercentiles(warm.latencies_us);
  double cold_rps = cold.wall_seconds > 0
                        ? static_cast<double>(requests) / cold.wall_seconds
                        : 0;
  double warm_rps = warm.wall_seconds > 0
                        ? static_cast<double>(requests) / warm.wall_seconds
                        : 0;

  std::printf(
      "%s: %llu requests x2 passes, concurrency %llu, %llu ontologies, "
      "%llu tenants, seed %llu\n"
      "  cold: p50 %llu us, p99 %llu us, mean %.0f us, %.1f req/s\n"
      "  warm: p50 %llu us, p99 %llu us, mean %.0f us, %.1f req/s\n"
      "  errors: %llu cold, %llu warm; verify mismatches: %llu\n",
      label.c_str(), static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(concurrency),
      static_cast<unsigned long long>(ontologies),
      static_cast<unsigned long long>(tenants),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(cold_p.p50),
      static_cast<unsigned long long>(cold_p.p99), cold_p.mean, cold_rps,
      static_cast<unsigned long long>(warm_p.p50),
      static_cast<unsigned long long>(warm_p.p99), warm_p.mean, warm_rps,
      static_cast<unsigned long long>(cold.errors),
      static_cast<unsigned long long>(warm.errors),
      static_cast<unsigned long long>(mismatches));

  if (!json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.BeginObject("context");
    w.Field("executable", "omqc_load");
    w.Field("num_requests", requests);
    w.Field("concurrency", concurrency);
    w.Field("num_ontologies", ontologies);
    w.Field("num_tenants", tenants);
    w.Field("seed", seed);
    w.Field("caches", "");
    w.EndObject();
    w.BeginArray("benchmarks");
    AppendBenchEntry(w, label + "/cold/p50",
                     static_cast<double>(cold_p.p50), 0);
    AppendBenchEntry(w, label + "/cold/p99",
                     static_cast<double>(cold_p.p99), 0);
    AppendBenchEntry(w, label + "/cold/mean", cold_p.mean, cold_rps);
    AppendBenchEntry(w, label + "/warm/p50",
                     static_cast<double>(warm_p.p50), 0);
    AppendBenchEntry(w, label + "/warm/p99",
                     static_cast<double>(warm_p.p99), 0);
    AppendBenchEntry(w, label + "/warm/mean", warm_p.mean, warm_rps);
    w.EndArray();
    w.EndObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  bool failed = cold.errors + warm.errors > 0 || mismatches > 0;
  return failed ? 1 : 0;
}
