// Rewriting explorer: run XRewrite on the paper's Example 1 and on a
// sticky ontology, showing the produced UCQ rewritings, their sizes and
// the analytic bounds of Props. 12/17 — then verify the rewriting against
// chase-based evaluation on sample data.
//
//   $ ./examples/rewriting_explorer

#include <cstdio>

#include "chase/chase.h"
#include "logic/homomorphism.h"
#include "rewrite/xrewrite.h"
#include "tgd/parser.h"

using namespace omqc;

namespace {

void Explore(const char* title, const Schema& schema, const TgdSet& tgds,
             const ConjunctiveQuery& q, const Database& sample) {
  std::printf("=== %s ===\nontology:\n%s\nquery: %s\n\n", title,
              tgds.ToString().c_str(), q.ToString().c_str());
  XRewriteStats stats;
  auto rewriting = XRewrite(schema, tgds, q, XRewriteOptions(), &stats);
  if (!rewriting.ok()) {
    std::printf("rewriting failed: %s\n\n",
                rewriting.status().ToString().c_str());
    return;
  }
  UnionOfCQs minimized = MinimizeUCQ(*rewriting);
  std::printf("UCQ rewriting (%zu disjuncts, %zu after minimization):\n%s\n",
              rewriting->size(), minimized.size(),
              minimized.ToString().c_str());
  std::printf("max disjunct atoms: %zu (Prop. 12 linear bound: %zu, "
              "Prop. 17 sticky bound: %zu)\n",
              stats.max_disjunct_atoms, LinearRewriteBound(q),
              StickyRewriteBound(schema, tgds, q));

  // Cross-check: rewriting evaluation == chase evaluation on the sample.
  auto via_rewriting = EvaluateUCQ(minimized, sample);
  ChaseOptions chase_options;
  chase_options.max_level = 10;
  auto chased = Chase(sample, tgds, chase_options).value();
  auto via_chase = EvaluateCQ(q, chased.instance);
  std::printf("sample data: %zu answers via rewriting, %zu via chase (%s)"
              "\n\n",
              via_rewriting.size(), via_chase.size(),
              via_rewriting == via_chase ? "agree" : "DISAGREE");
}

}  // namespace

int main() {
  // Example 1 of the paper: rewriting is P(x) ∨ T(x).
  {
    Schema schema;
    schema.Add(Predicate::Get("P", 1));
    schema.Add(Predicate::Get("T", 1));
    Explore("Paper Example 1 (linear)", schema,
            ParseTgds("P(X) -> R(X,Y). R(X,Y) -> P(Y). T(X) -> P(X).")
                .value(),
            ParseQuery("Q(X) :- R(X,Y), P(Y)").value(),
            ParseDatabase("T(a). P(b).").value());
  }
  // A sticky, recursive ontology: joins beyond guardedness.
  {
    Schema schema;
    schema.Add(Predicate::Get("R", 2));
    schema.Add(Predicate::Get("P", 2));
    Explore("Sticky join ontology", schema,
            ParseTgds("R(X,Y), P(X,Z) -> T(X,Y,Z). T(X,Y,Z) -> R(Y,X).")
                .value(),
            ParseQuery("Q(X) :- T(X,Y,Z)").value(),
            ParseDatabase("R(a,b). P(a,c). P(b,d).").value());
  }
  return 0;
}
