// Distribution over components (Sec. 7.1): decide whether an OMQ can be
// evaluated coordination-free over the connected components of the data,
// then actually evaluate it shard-by-shard and compare with the global
// answer.
//
//   $ ./examples/distributed_evaluation
//
// Two OMQs over a social/network schema: a connected reachability query
// (distributes) and a cartesian "two independent facts" query (does not).

#include <cstdio>

#include "core/applications.h"
#include "tgd/parser.h"

using namespace omqc;

namespace {

void Report(const char* name, const Omq& omq, const Database& db) {
  auto decision = DistributesOverComponents(omq);
  if (!decision.ok()) {
    std::printf("%s: decision error: %s\n", name,
                decision.status().ToString().c_str());
    return;
  }
  std::printf("%s distributes over components: %s\n", name,
              ContainmentOutcomeToString(decision->outcome));
  if (decision->witnessing_component.has_value()) {
    std::printf("  witnessing component: #%zu of the query\n",
                *decision->witnessing_component);
  }

  auto global = EvalAll(omq, db);
  auto sharded = EvalOverComponents(omq, db);
  if (!global.ok() || !sharded.ok()) {
    std::printf("  evaluation failed\n");
    return;
  }
  std::printf("  global answers: %zu, component-wise answers: %zu (%s)\n\n",
              global->size(), sharded->size(),
              *global == *sharded ? "equal — coordination-free is safe"
                                  : "DIFFER — distribution would be wrong");
}

}  // namespace

int main() {
  Schema schema;
  schema.Add(Predicate::Get("Follows", 2));
  schema.Add(Predicate::Get("Verified", 1));
  schema.Add(Predicate::Get("Celebrity", 1));

  TgdSet tgds = ParseTgds(R"(
    % Influence propagates along follow edges from verified accounts.
    Follows(X,Y), Influencer(X) -> Influencer(Y).
    Verified(X) -> Influencer(X).
  )").value();

  // Two shards of a social graph, plus an isolated celebrity fact.
  Database db = ParseDatabase(R"(
    Verified(alice). Follows(alice,bob). Follows(bob,carol).
    Verified(dana).  Follows(dana,erin).
    Celebrity(carol). Celebrity(zeno).
  )").value();

  // Connected query: "influencers who are celebrities" — one component.
  Omq connected{schema, tgds,
                ParseQuery("Q(X) :- Influencer(X), Celebrity(X)").value()};
  Report("influencer-celebrities", connected, db);

  // Cartesian query: "there is an influencer and (separately) a
  // celebrity" — two components, no ontology link between them. On a
  // database whose only celebrity is isolated, component-wise evaluation
  // silently loses the answer.
  Database split_db = ParseDatabase(R"(
    Verified(alice). Follows(alice,bob).
    Celebrity(zeno).
  )").value();
  Omq cartesian{schema, tgds,
                ParseQuery("Q() :- Influencer(X), Celebrity(Y)").value()};
  Report("influencer-and-celebrity", cartesian, split_db);

  return 0;
}
