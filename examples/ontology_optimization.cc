// Ontology-aware query optimization: use containment and equivalence to
// (a) drop redundant disjuncts from a UCQ under an ontology, and (b)
// replace a query by a cheaper equivalent one.
//
//   $ ./examples/ontology_optimization
//
// This is the classic application of containment cited in the paper's
// introduction (query optimization / view-based answering): a disjunct
// q_i of a UCQ is redundant when (S,Σ,q_i) ⊆ (S,Σ,q_j) for some other
// disjunct q_j — the ontology can make disjuncts redundant that are
// incomparable as plain CQs.

#include <cstdio>

#include "core/containment.h"
#include "tgd/parser.h"

using namespace omqc;

int main() {
  Schema data_schema;
  for (const char* name : {"Flight", "Train"}) {
    data_schema.Add(Predicate::Get(name, 2));
  }
  data_schema.Add(Predicate::Get("Hub", 1));

  // Ontology: every flight or train is a connection; hubs have an
  // (unknown) outgoing flight.
  TgdSet tgds = ParseTgds(R"(
    Flight(X,Y) -> Connected(X,Y).
    Train(X,Y) -> Connected(X,Y).
    Hub(X) -> Flight(X,Y).
  )").value();

  // A UCQ a user might write: three ways to be "reachable from a hub".
  UnionOfCQs user_query = ParseUCQ(R"(
    Q(X) :- Hub(X).
    Q(X) :- Hub(X), Connected(X,Y).
    Q(X) :- Hub(X), Flight(X,Y).
  )").value();

  std::printf("user UCQ (%zu disjuncts):\n%s\n\n", user_query.size(),
              user_query.ToString().c_str());

  // Pairwise containment under the ontology: drop disjunct i if it is
  // contained in another kept disjunct.
  std::vector<ConjunctiveQuery> kept;
  for (size_t i = 0; i < user_query.size(); ++i) {
    Omq candidate{data_schema, tgds, user_query.disjuncts[i]};
    bool redundant = false;
    for (size_t j = 0; j < user_query.size(); ++j) {
      if (i == j) continue;
      // Keep the first representative among equivalent disjuncts.
      Omq other{data_schema, tgds, user_query.disjuncts[j]};
      auto fwd = CheckContainment(candidate, other);
      if (!fwd.ok() || fwd->outcome != ContainmentOutcome::kContained) {
        continue;
      }
      auto bwd = CheckContainment(other, candidate);
      bool equivalent =
          bwd.ok() && bwd->outcome == ContainmentOutcome::kContained;
      if (!equivalent || j < i) {
        redundant = true;
        std::printf("  disjunct %zu ⊆ disjunct %zu under Σ -> dropped\n",
                    i, j);
        break;
      }
    }
    if (!redundant) kept.push_back(user_query.disjuncts[i]);
  }

  std::printf("\noptimized UCQ (%zu disjunct%s):\n", kept.size(),
              kept.size() == 1 ? "" : "s");
  for (const ConjunctiveQuery& q : kept) {
    std::printf("%s\n", q.ToString().c_str());
  }

  // All three disjuncts collapse to Hub(x): the ontology says every hub
  // has an outgoing flight, which is a connection.
  return kept.size() == 1 ? 0 : 1;
}
