file(REMOVE_RECURSE
  "libomqc_base.a"
)
