# Empty compiler generated dependencies file for omqc_base.
# This may be replaced when dependencies are built.
