file(REMOVE_RECURSE
  "CMakeFiles/omqc_base.dir/status.cc.o"
  "CMakeFiles/omqc_base.dir/status.cc.o.d"
  "CMakeFiles/omqc_base.dir/string_util.cc.o"
  "CMakeFiles/omqc_base.dir/string_util.cc.o.d"
  "libomqc_base.a"
  "libomqc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
