file(REMOVE_RECURSE
  "CMakeFiles/omqc_automata.dir/downward.cc.o"
  "CMakeFiles/omqc_automata.dir/downward.cc.o.d"
  "CMakeFiles/omqc_automata.dir/pbf.cc.o"
  "CMakeFiles/omqc_automata.dir/pbf.cc.o.d"
  "CMakeFiles/omqc_automata.dir/twapa.cc.o"
  "CMakeFiles/omqc_automata.dir/twapa.cc.o.d"
  "libomqc_automata.a"
  "libomqc_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
