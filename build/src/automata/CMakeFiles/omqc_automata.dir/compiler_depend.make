# Empty compiler generated dependencies file for omqc_automata.
# This may be replaced when dependencies are built.
