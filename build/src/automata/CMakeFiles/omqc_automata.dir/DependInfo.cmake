
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/downward.cc" "src/automata/CMakeFiles/omqc_automata.dir/downward.cc.o" "gcc" "src/automata/CMakeFiles/omqc_automata.dir/downward.cc.o.d"
  "/root/repo/src/automata/pbf.cc" "src/automata/CMakeFiles/omqc_automata.dir/pbf.cc.o" "gcc" "src/automata/CMakeFiles/omqc_automata.dir/pbf.cc.o.d"
  "/root/repo/src/automata/twapa.cc" "src/automata/CMakeFiles/omqc_automata.dir/twapa.cc.o" "gcc" "src/automata/CMakeFiles/omqc_automata.dir/twapa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/omqc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
