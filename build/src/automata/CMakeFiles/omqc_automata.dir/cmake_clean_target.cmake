file(REMOVE_RECURSE
  "libomqc_automata.a"
)
