# Empty dependencies file for omqc_tgd.
# This may be replaced when dependencies are built.
