file(REMOVE_RECURSE
  "CMakeFiles/omqc_tgd.dir/classify.cc.o"
  "CMakeFiles/omqc_tgd.dir/classify.cc.o.d"
  "CMakeFiles/omqc_tgd.dir/parser.cc.o"
  "CMakeFiles/omqc_tgd.dir/parser.cc.o.d"
  "CMakeFiles/omqc_tgd.dir/tgd.cc.o"
  "CMakeFiles/omqc_tgd.dir/tgd.cc.o.d"
  "libomqc_tgd.a"
  "libomqc_tgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_tgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
