file(REMOVE_RECURSE
  "libomqc_tgd.a"
)
