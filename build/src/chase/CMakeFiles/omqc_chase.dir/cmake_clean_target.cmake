file(REMOVE_RECURSE
  "libomqc_chase.a"
)
