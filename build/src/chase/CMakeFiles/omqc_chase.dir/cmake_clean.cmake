file(REMOVE_RECURSE
  "CMakeFiles/omqc_chase.dir/chase.cc.o"
  "CMakeFiles/omqc_chase.dir/chase.cc.o.d"
  "libomqc_chase.a"
  "libomqc_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
