# Empty compiler generated dependencies file for omqc_chase.
# This may be replaced when dependencies are built.
