# Empty dependencies file for omqc_logic.
# This may be replaced when dependencies are built.
