file(REMOVE_RECURSE
  "libomqc_logic.a"
)
