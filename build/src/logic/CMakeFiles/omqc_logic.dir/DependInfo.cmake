
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/atom.cc" "src/logic/CMakeFiles/omqc_logic.dir/atom.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/atom.cc.o.d"
  "/root/repo/src/logic/cq.cc" "src/logic/CMakeFiles/omqc_logic.dir/cq.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/cq.cc.o.d"
  "/root/repo/src/logic/homomorphism.cc" "src/logic/CMakeFiles/omqc_logic.dir/homomorphism.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/homomorphism.cc.o.d"
  "/root/repo/src/logic/instance.cc" "src/logic/CMakeFiles/omqc_logic.dir/instance.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/instance.cc.o.d"
  "/root/repo/src/logic/substitution.cc" "src/logic/CMakeFiles/omqc_logic.dir/substitution.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/substitution.cc.o.d"
  "/root/repo/src/logic/term.cc" "src/logic/CMakeFiles/omqc_logic.dir/term.cc.o" "gcc" "src/logic/CMakeFiles/omqc_logic.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/omqc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
