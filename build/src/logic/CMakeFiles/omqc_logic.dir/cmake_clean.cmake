file(REMOVE_RECURSE
  "CMakeFiles/omqc_logic.dir/atom.cc.o"
  "CMakeFiles/omqc_logic.dir/atom.cc.o.d"
  "CMakeFiles/omqc_logic.dir/cq.cc.o"
  "CMakeFiles/omqc_logic.dir/cq.cc.o.d"
  "CMakeFiles/omqc_logic.dir/homomorphism.cc.o"
  "CMakeFiles/omqc_logic.dir/homomorphism.cc.o.d"
  "CMakeFiles/omqc_logic.dir/instance.cc.o"
  "CMakeFiles/omqc_logic.dir/instance.cc.o.d"
  "CMakeFiles/omqc_logic.dir/substitution.cc.o"
  "CMakeFiles/omqc_logic.dir/substitution.cc.o.d"
  "CMakeFiles/omqc_logic.dir/term.cc.o"
  "CMakeFiles/omqc_logic.dir/term.cc.o.d"
  "libomqc_logic.a"
  "libomqc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
