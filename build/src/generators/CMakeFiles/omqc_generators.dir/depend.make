# Empty dependencies file for omqc_generators.
# This may be replaced when dependencies are built.
