file(REMOVE_RECURSE
  "CMakeFiles/omqc_generators.dir/families.cc.o"
  "CMakeFiles/omqc_generators.dir/families.cc.o.d"
  "CMakeFiles/omqc_generators.dir/tiling.cc.o"
  "CMakeFiles/omqc_generators.dir/tiling.cc.o.d"
  "libomqc_generators.a"
  "libomqc_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
