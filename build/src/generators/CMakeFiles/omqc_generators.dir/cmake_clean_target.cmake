file(REMOVE_RECURSE
  "libomqc_generators.a"
)
