file(REMOVE_RECURSE
  "CMakeFiles/omqc_rewrite.dir/unify.cc.o"
  "CMakeFiles/omqc_rewrite.dir/unify.cc.o.d"
  "CMakeFiles/omqc_rewrite.dir/xrewrite.cc.o"
  "CMakeFiles/omqc_rewrite.dir/xrewrite.cc.o.d"
  "libomqc_rewrite.a"
  "libomqc_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
