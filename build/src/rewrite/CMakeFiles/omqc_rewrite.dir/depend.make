# Empty dependencies file for omqc_rewrite.
# This may be replaced when dependencies are built.
