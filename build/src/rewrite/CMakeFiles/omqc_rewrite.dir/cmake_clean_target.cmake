file(REMOVE_RECURSE
  "libomqc_rewrite.a"
)
