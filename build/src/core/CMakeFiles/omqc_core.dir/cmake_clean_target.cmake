file(REMOVE_RECURSE
  "libomqc_core.a"
)
