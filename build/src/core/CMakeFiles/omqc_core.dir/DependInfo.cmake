
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/applications.cc" "src/core/CMakeFiles/omqc_core.dir/applications.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/applications.cc.o.d"
  "/root/repo/src/core/containment.cc" "src/core/CMakeFiles/omqc_core.dir/containment.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/containment.cc.o.d"
  "/root/repo/src/core/ctree.cc" "src/core/CMakeFiles/omqc_core.dir/ctree.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/ctree.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/omqc_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/eval.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/omqc_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/explain.cc.o.d"
  "/root/repo/src/core/guarded_automata.cc" "src/core/CMakeFiles/omqc_core.dir/guarded_automata.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/guarded_automata.cc.o.d"
  "/root/repo/src/core/lean.cc" "src/core/CMakeFiles/omqc_core.dir/lean.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/lean.cc.o.d"
  "/root/repo/src/core/minimize.cc" "src/core/CMakeFiles/omqc_core.dir/minimize.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/minimize.cc.o.d"
  "/root/repo/src/core/omq.cc" "src/core/CMakeFiles/omqc_core.dir/omq.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/omq.cc.o.d"
  "/root/repo/src/core/reductions.cc" "src/core/CMakeFiles/omqc_core.dir/reductions.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/reductions.cc.o.d"
  "/root/repo/src/core/squid.cc" "src/core/CMakeFiles/omqc_core.dir/squid.cc.o" "gcc" "src/core/CMakeFiles/omqc_core.dir/squid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/omqc_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/omqc_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/omqc_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/tgd/CMakeFiles/omqc_tgd.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/omqc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/omqc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
