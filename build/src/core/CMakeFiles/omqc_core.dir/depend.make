# Empty dependencies file for omqc_core.
# This may be replaced when dependencies are built.
