file(REMOVE_RECURSE
  "CMakeFiles/omqc_core.dir/applications.cc.o"
  "CMakeFiles/omqc_core.dir/applications.cc.o.d"
  "CMakeFiles/omqc_core.dir/containment.cc.o"
  "CMakeFiles/omqc_core.dir/containment.cc.o.d"
  "CMakeFiles/omqc_core.dir/ctree.cc.o"
  "CMakeFiles/omqc_core.dir/ctree.cc.o.d"
  "CMakeFiles/omqc_core.dir/eval.cc.o"
  "CMakeFiles/omqc_core.dir/eval.cc.o.d"
  "CMakeFiles/omqc_core.dir/explain.cc.o"
  "CMakeFiles/omqc_core.dir/explain.cc.o.d"
  "CMakeFiles/omqc_core.dir/guarded_automata.cc.o"
  "CMakeFiles/omqc_core.dir/guarded_automata.cc.o.d"
  "CMakeFiles/omqc_core.dir/lean.cc.o"
  "CMakeFiles/omqc_core.dir/lean.cc.o.d"
  "CMakeFiles/omqc_core.dir/minimize.cc.o"
  "CMakeFiles/omqc_core.dir/minimize.cc.o.d"
  "CMakeFiles/omqc_core.dir/omq.cc.o"
  "CMakeFiles/omqc_core.dir/omq.cc.o.d"
  "CMakeFiles/omqc_core.dir/reductions.cc.o"
  "CMakeFiles/omqc_core.dir/reductions.cc.o.d"
  "CMakeFiles/omqc_core.dir/squid.cc.o"
  "CMakeFiles/omqc_core.dir/squid.cc.o.d"
  "libomqc_core.a"
  "libomqc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
