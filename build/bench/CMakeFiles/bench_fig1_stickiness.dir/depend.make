# Empty dependencies file for bench_fig1_stickiness.
# This may be replaced when dependencies are built.
