file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stickiness.dir/bench_fig1_stickiness.cc.o"
  "CMakeFiles/bench_fig1_stickiness.dir/bench_fig1_stickiness.cc.o.d"
  "bench_fig1_stickiness"
  "bench_fig1_stickiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stickiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
