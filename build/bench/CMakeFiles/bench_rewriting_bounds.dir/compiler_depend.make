# Empty compiler generated dependencies file for bench_rewriting_bounds.
# This may be replaced when dependencies are built.
