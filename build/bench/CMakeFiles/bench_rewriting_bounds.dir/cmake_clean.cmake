file(REMOVE_RECURSE
  "CMakeFiles/bench_rewriting_bounds.dir/bench_rewriting_bounds.cc.o"
  "CMakeFiles/bench_rewriting_bounds.dir/bench_rewriting_bounds.cc.o.d"
  "bench_rewriting_bounds"
  "bench_rewriting_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewriting_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
