file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_linear.dir/bench_table1_linear.cc.o"
  "CMakeFiles/bench_table1_linear.dir/bench_table1_linear.cc.o.d"
  "bench_table1_linear"
  "bench_table1_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
