# Empty dependencies file for bench_table1_sticky.
# This may be replaced when dependencies are built.
