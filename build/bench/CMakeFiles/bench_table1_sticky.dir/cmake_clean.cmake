file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sticky.dir/bench_table1_sticky.cc.o"
  "CMakeFiles/bench_table1_sticky.dir/bench_table1_sticky.cc.o.d"
  "bench_table1_sticky"
  "bench_table1_sticky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sticky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
