# Empty dependencies file for bench_cross_language.
# This may be replaced when dependencies are built.
