file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_language.dir/bench_cross_language.cc.o"
  "CMakeFiles/bench_cross_language.dir/bench_cross_language.cc.o.d"
  "bench_cross_language"
  "bench_cross_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
