file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nonrecursive.dir/bench_table1_nonrecursive.cc.o"
  "CMakeFiles/bench_table1_nonrecursive.dir/bench_table1_nonrecursive.cc.o.d"
  "bench_table1_nonrecursive"
  "bench_table1_nonrecursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nonrecursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
