file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_guarded.dir/bench_table1_guarded.cc.o"
  "CMakeFiles/bench_table1_guarded.dir/bench_table1_guarded.cc.o.d"
  "bench_table1_guarded"
  "bench_table1_guarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_guarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
