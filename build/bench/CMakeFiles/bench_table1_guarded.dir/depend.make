# Empty dependencies file for bench_table1_guarded.
# This may be replaced when dependencies are built.
