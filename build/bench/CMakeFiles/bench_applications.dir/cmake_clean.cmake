file(REMOVE_RECURSE
  "CMakeFiles/bench_applications.dir/bench_applications.cc.o"
  "CMakeFiles/bench_applications.dir/bench_applications.cc.o.d"
  "bench_applications"
  "bench_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
