file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tiling.dir/bench_fig2_tiling.cc.o"
  "CMakeFiles/bench_fig2_tiling.dir/bench_fig2_tiling.cc.o.d"
  "bench_fig2_tiling"
  "bench_fig2_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
