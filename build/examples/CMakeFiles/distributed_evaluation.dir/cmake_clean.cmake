file(REMOVE_RECURSE
  "CMakeFiles/distributed_evaluation.dir/distributed_evaluation.cc.o"
  "CMakeFiles/distributed_evaluation.dir/distributed_evaluation.cc.o.d"
  "distributed_evaluation"
  "distributed_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
