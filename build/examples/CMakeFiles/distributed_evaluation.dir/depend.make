# Empty dependencies file for distributed_evaluation.
# This may be replaced when dependencies are built.
