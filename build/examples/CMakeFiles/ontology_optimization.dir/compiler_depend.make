# Empty compiler generated dependencies file for ontology_optimization.
# This may be replaced when dependencies are built.
