file(REMOVE_RECURSE
  "CMakeFiles/ontology_optimization.dir/ontology_optimization.cc.o"
  "CMakeFiles/ontology_optimization.dir/ontology_optimization.cc.o.d"
  "ontology_optimization"
  "ontology_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
