# Empty compiler generated dependencies file for omqc_cli.
# This may be replaced when dependencies are built.
