file(REMOVE_RECURSE
  "CMakeFiles/omqc_cli.dir/omqc_cli.cc.o"
  "CMakeFiles/omqc_cli.dir/omqc_cli.cc.o.d"
  "omqc_cli"
  "omqc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omqc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
