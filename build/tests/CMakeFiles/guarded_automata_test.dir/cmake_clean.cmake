file(REMOVE_RECURSE
  "CMakeFiles/guarded_automata_test.dir/guarded_automata_test.cc.o"
  "CMakeFiles/guarded_automata_test.dir/guarded_automata_test.cc.o.d"
  "guarded_automata_test"
  "guarded_automata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_automata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
