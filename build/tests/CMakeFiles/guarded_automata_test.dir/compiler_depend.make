# Empty compiler generated dependencies file for guarded_automata_test.
# This may be replaced when dependencies are built.
