# Empty dependencies file for xrewrite_test.
# This may be replaced when dependencies are built.
