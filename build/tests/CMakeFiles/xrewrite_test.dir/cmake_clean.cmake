file(REMOVE_RECURSE
  "CMakeFiles/xrewrite_test.dir/xrewrite_test.cc.o"
  "CMakeFiles/xrewrite_test.dir/xrewrite_test.cc.o.d"
  "xrewrite_test"
  "xrewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
