# Empty dependencies file for tgd_test.
# This may be replaced when dependencies are built.
