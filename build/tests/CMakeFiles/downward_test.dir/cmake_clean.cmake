file(REMOVE_RECURSE
  "CMakeFiles/downward_test.dir/downward_test.cc.o"
  "CMakeFiles/downward_test.dir/downward_test.cc.o.d"
  "downward_test"
  "downward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
