# Empty dependencies file for downward_test.
# This may be replaced when dependencies are built.
