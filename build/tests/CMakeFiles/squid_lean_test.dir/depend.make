# Empty dependencies file for squid_lean_test.
# This may be replaced when dependencies are built.
