file(REMOVE_RECURSE
  "CMakeFiles/squid_lean_test.dir/squid_lean_test.cc.o"
  "CMakeFiles/squid_lean_test.dir/squid_lean_test.cc.o.d"
  "squid_lean_test"
  "squid_lean_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_lean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
